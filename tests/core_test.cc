// Core kernels: interpolation search, the merge-join kernel, the
// run-join driver, match bitmap, and consumers.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/consumers.h"
#include "core/interpolation_search.h"
#include "core/merge_join.h"
#include "sort/radix_introsort.h"
#include "util/rng.h"

namespace mpsm {
namespace {

std::vector<Tuple> SortedKeys(std::vector<uint64_t> keys) {
  std::sort(keys.begin(), keys.end());
  std::vector<Tuple> tuples;
  tuples.reserve(keys.size());
  for (uint64_t k : keys) tuples.push_back(Tuple{k, k * 2});
  return tuples;
}

// ------------------------------------------------------------ search

using SearchFn = size_t (*)(const Tuple*, size_t, uint64_t, SearchStats*);

class LowerBoundTest : public testing::TestWithParam<SearchFn> {};

TEST_P(LowerBoundTest, MatchesStdLowerBound) {
  SearchFn search = GetParam();
  Xoshiro256 rng(6);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<uint64_t> keys(rng.NextBounded(500));
    for (auto& k : keys) k = rng.NextBounded(10000);
    const auto tuples = SortedKeys(keys);
    for (int probe = 0; probe < 50; ++probe) {
      const uint64_t key = rng.NextBounded(11000);
      const size_t expected =
          std::lower_bound(tuples.begin(), tuples.end(), Tuple{key, 0},
                           TupleKeyLess{}) -
          tuples.begin();
      EXPECT_EQ(search(tuples.data(), tuples.size(), key, nullptr),
                expected);
    }
  }
}

TEST_P(LowerBoundTest, EdgeCases) {
  SearchFn search = GetParam();
  EXPECT_EQ(search(nullptr, 0, 5, nullptr), 0u);

  const auto tuples = SortedKeys({10, 20, 20, 20, 30});
  EXPECT_EQ(search(tuples.data(), tuples.size(), 0, nullptr), 0u);
  EXPECT_EQ(search(tuples.data(), tuples.size(), 10, nullptr), 0u);
  EXPECT_EQ(search(tuples.data(), tuples.size(), 11, nullptr), 1u);
  EXPECT_EQ(search(tuples.data(), tuples.size(), 20, nullptr), 1u);
  EXPECT_EQ(search(tuples.data(), tuples.size(), 21, nullptr), 4u);
  EXPECT_EQ(search(tuples.data(), tuples.size(), 30, nullptr), 4u);
  EXPECT_EQ(search(tuples.data(), tuples.size(), 31, nullptr), 5u);

  const auto equal = SortedKeys(std::vector<uint64_t>(100, 7));
  EXPECT_EQ(search(equal.data(), equal.size(), 7, nullptr), 0u);
  EXPECT_EQ(search(equal.data(), equal.size(), 8, nullptr), 100u);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, LowerBoundTest,
    testing::Values(&InterpolationLowerBound, &BinaryLowerBound,
                    &LinearLowerBound),
    [](const testing::TestParamInfo<SearchFn>& info) {
      if (info.param == &InterpolationLowerBound) return "interpolation";
      if (info.param == &BinaryLowerBound) return "binary";
      return "linear";
    });

TEST(InterpolationSearchTest, FewProbesOnUniformData) {
  Xoshiro256 rng(9);
  std::vector<uint64_t> keys(1u << 20);
  for (auto& k : keys) k = rng.NextBounded(uint64_t{1} << 32);
  const auto tuples = SortedKeys(std::move(keys));

  uint64_t interp_probes = 0, binary_probes = 0;
  for (int i = 0; i < 200; ++i) {
    const uint64_t key = rng.NextBounded(uint64_t{1} << 32);
    SearchStats si, sb;
    InterpolationLowerBound(tuples.data(), tuples.size(), key, &si);
    BinaryLowerBound(tuples.data(), tuples.size(), key, &sb);
    interp_probes += si.probes;
    binary_probes += sb.probes;
  }
  // O(log log n) vs O(log n): interpolation should need far fewer
  // probes on uniform keys (the §3.2.2 motivation).
  EXPECT_LT(interp_probes * 2, binary_probes);
}

TEST(InterpolationSearchTest, AdversarialDistributionStillLogarithmic) {
  // Exponentially spaced keys defeat interpolation's proportion rule;
  // the binary fallback must bound the probes.
  std::vector<uint64_t> keys;
  uint64_t k = 1;
  for (int i = 0; i < 50; ++i) {
    keys.push_back(k);
    k *= 2;
  }
  const auto tuples = SortedKeys(std::move(keys));
  SearchStats stats;
  const size_t pos =
      InterpolationLowerBound(tuples.data(), tuples.size(), 3, &stats);
  EXPECT_EQ(pos, 2u);  // first key >= 3 is 4
  EXPECT_LT(stats.probes, 64u);
}

// ------------------------------------------------------ merge kernel

struct Pair {
  uint64_t r_payload;
  uint64_t s_payload;
  bool operator==(const Pair&) const = default;
  auto operator<=>(const Pair&) const = default;
};

std::vector<Pair> KernelJoin(const std::vector<Tuple>& r,
                             const std::vector<Tuple>& s) {
  std::vector<Pair> pairs;
  MergeJoinRunPair(r.data(), r.size(), s.data(), s.size(),
                   [&](size_t, const Tuple& rt, const Tuple* sg, size_t n) {
                     for (size_t i = 0; i < n; ++i) {
                       pairs.push_back(Pair{rt.payload, sg[i].payload});
                     }
                   });
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

std::vector<Pair> NestedLoopJoin(const std::vector<Tuple>& r,
                                 const std::vector<Tuple>& s) {
  std::vector<Pair> pairs;
  for (const auto& rt : r) {
    for (const auto& st : s) {
      if (rt.key == st.key) pairs.push_back(Pair{rt.payload, st.payload});
    }
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

TEST(MergeJoinKernelTest, MatchesNestedLoopOnRandomInputs) {
  Xoshiro256 rng(15);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Tuple> r(rng.NextBounded(200)), s(rng.NextBounded(200));
    uint64_t payload = 0;
    for (auto& t : r) t = Tuple{rng.NextBounded(40), payload++};
    for (auto& t : s) t = Tuple{rng.NextBounded(40), payload++};
    sort::RadixIntroSort(r.data(), r.size());
    sort::RadixIntroSort(s.data(), s.size());
    EXPECT_EQ(KernelJoin(r, s), NestedLoopJoin(r, s)) << "trial " << trial;
  }
}

TEST(MergeJoinKernelTest, DuplicateGroupsOnBothSides) {
  const auto r = SortedKeys({1, 1, 1, 2, 3, 3});
  const auto s = SortedKeys({1, 1, 3, 3, 3, 4});
  const auto pairs = KernelJoin(r, s);
  // key 1: 3 x 2 = 6 pairs; key 3: 2 x 3 = 6 pairs.
  EXPECT_EQ(pairs.size(), 12u);
}

TEST(MergeJoinKernelTest, ScanPositionsReported) {
  const auto r = SortedKeys({5, 6, 7});
  const auto s = SortedKeys({1, 2, 3, 6, 9});
  const auto scan = MergeJoinRunPair(r.data(), r.size(), s.data(), s.size(),
                                     [](size_t, const Tuple&, const Tuple*,
                                        size_t) {});
  EXPECT_EQ(scan.matches, 1u);
  EXPECT_LE(scan.r_end, r.size());
  EXPECT_LE(scan.s_end, s.size());
  EXPECT_GE(scan.s_end, 4u);  // consumed up to and including key 6
}

TEST(MergeJoinKernelTest, DisjointRangesTerminateEarly) {
  const auto r = SortedKeys({1, 2, 3});
  const auto s = SortedKeys({100, 200});
  const auto scan = MergeJoinRunPair(r.data(), r.size(), s.data(), s.size(),
                                     [](size_t, const Tuple&, const Tuple*,
                                        size_t) { FAIL(); });
  EXPECT_EQ(scan.matches, 0u);
  EXPECT_EQ(scan.s_end, 0u);  // never advanced past the first s key
}

TEST(MergeJoinKernelTest, PrefetchVariantIsEquivalent) {
  // The pipelined kernel must produce the same pairs, scan positions,
  // and match counts as the scalar kernel for every input shape,
  // including runs shorter than the prefetch distance.
  Xoshiro256 rng(27);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Tuple> r(rng.NextBounded(300)), s(rng.NextBounded(300));
    uint64_t payload = 0;
    for (auto& t : r) t = Tuple{rng.NextBounded(50), payload++};
    for (auto& t : s) t = Tuple{rng.NextBounded(50), payload++};
    sort::RadixIntroSort(r.data(), r.size());
    sort::RadixIntroSort(s.data(), s.size());

    std::vector<Pair> scalar_pairs, prefetch_pairs;
    const auto scalar_scan = MergeJoinRunPair(
        r.data(), r.size(), s.data(), s.size(),
        [&](size_t, const Tuple& rt, const Tuple* sg, size_t n) {
          for (size_t i = 0; i < n; ++i) {
            scalar_pairs.push_back(Pair{rt.payload, sg[i].payload});
          }
        });
    const auto prefetch_scan = MergeJoinRunPairPrefetch(
        r.data(), r.size(), s.data(), s.size(),
        kDefaultMergePrefetchDistance,
        [&](size_t, const Tuple& rt, const Tuple* sg, size_t n) {
          for (size_t i = 0; i < n; ++i) {
            prefetch_pairs.push_back(Pair{rt.payload, sg[i].payload});
          }
        });
    EXPECT_EQ(scalar_pairs, prefetch_pairs) << "trial " << trial;
    EXPECT_EQ(scalar_scan.matches, prefetch_scan.matches);
    EXPECT_EQ(scalar_scan.r_end, prefetch_scan.r_end);
    EXPECT_EQ(scalar_scan.s_end, prefetch_scan.s_end);
  }
}

TEST(MergeJoinKernelTest, EmptySides) {
  const auto r = SortedKeys({1, 2});
  auto scan = MergeJoinRunPair(r.data(), r.size(), nullptr, 0,
                               [](size_t, const Tuple&, const Tuple*,
                                  size_t) { FAIL(); });
  EXPECT_EQ(scan.matches, 0u);
  scan = MergeJoinRunPair(nullptr, 0, r.data(), r.size(),
                          [](size_t, const Tuple&, const Tuple*, size_t) {
                            FAIL();
                          });
  EXPECT_EQ(scan.matches, 0u);
}

// ------------------------------------------------------ match bitmap

TEST(MatchBitmapTest, SetAndGet) {
  MatchBitmap bitmap(200);
  EXPECT_EQ(bitmap.size(), 200u);
  for (size_t i = 0; i < 200; ++i) EXPECT_FALSE(bitmap.Get(i));
  bitmap.Set(0);
  bitmap.Set(63);
  bitmap.Set(64);
  bitmap.Set(199);
  EXPECT_TRUE(bitmap.Get(0));
  EXPECT_TRUE(bitmap.Get(63));
  EXPECT_TRUE(bitmap.Get(64));
  EXPECT_TRUE(bitmap.Get(199));
  EXPECT_FALSE(bitmap.Get(1));
  EXPECT_FALSE(bitmap.Get(65));
}

// -------------------------------------------------- run-join driver

TEST(RunJoinDriverTest, JoinsAgainstAllRunsWithStagger) {
  // Private run joins partners spread over 3 public runs.
  auto ri_tuples = SortedKeys({10, 20, 30});
  ::mpsm::Run ri{ri_tuples.data(), ri_tuples.size(), 0};

  auto s0 = SortedKeys({10, 15});
  auto s1 = SortedKeys({20, 20});
  auto s2 = SortedKeys({5, 30});
  RunSet s_runs = {::mpsm::Run{s0.data(), s0.size(), 0},
                   ::mpsm::Run{s1.data(), s1.size(), 1},
                   ::mpsm::Run{s2.data(), s2.size(), 2}};

  for (uint32_t first : {0u, 1u, 2u}) {
    CountFactory counts(1);
    PerfCounters counters;
    const uint64_t output = JoinPrivateAgainstRuns(
        ri, s_runs, first, RunJoinOptions{}, counts.ConsumerForWorker(0), 0,
        &counters);
    EXPECT_EQ(output, 4u) << "first=" << first;  // 10, 20x2, 30
    EXPECT_EQ(counters.output_tuples, 4u);
  }
}

TEST(RunJoinDriverTest, CountsLocalVersusRemoteTraffic) {
  auto ri_tuples = SortedKeys({1, 2, 3, 4});
  ::mpsm::Run ri{ri_tuples.data(), ri_tuples.size(), /*node=*/0};
  auto s0 = SortedKeys({1, 2});
  auto s1 = SortedKeys({3, 4});
  RunSet s_runs = {::mpsm::Run{s0.data(), s0.size(), /*node=*/0},
                   ::mpsm::Run{s1.data(), s1.size(), /*node=*/1}};

  CountFactory counts(1);
  PerfCounters counters;
  JoinPrivateAgainstRuns(ri, s_runs, 0, RunJoinOptions{},
                         counts.ConsumerForWorker(0), /*worker_node=*/0,
                         &counters);
  EXPECT_GT(counters.bytes_read_local_seq, 0u);   // own run + local s0
  EXPECT_GT(counters.bytes_read_remote_seq, 0u);  // s1 on node 1
  EXPECT_EQ(counters.sync_acquisitions, 0u);      // commandment C3
}

TEST(RunJoinDriverTest, SemiEmitsEachPrivateTupleOnce) {
  // Key 7 appears in two public runs; semi join must not double-count.
  auto ri_tuples = SortedKeys({7, 8});
  ::mpsm::Run ri{ri_tuples.data(), ri_tuples.size(), 0};
  auto s0 = SortedKeys({7, 7});
  auto s1 = SortedKeys({7});
  RunSet s_runs = {::mpsm::Run{s0.data(), s0.size(), 0},
                   ::mpsm::Run{s1.data(), s1.size(), 0}};

  CountFactory counts(1);
  RunJoinOptions options;
  options.kind = JoinKind::kLeftSemi;
  const uint64_t output = JoinPrivateAgainstRuns(
      ri, s_runs, 0, options, counts.ConsumerForWorker(0), 0, nullptr);
  EXPECT_EQ(output, 1u);  // only key 7, once
}

TEST(RunJoinDriverTest, AntiAndOuterAcrossRuns) {
  auto ri_tuples = SortedKeys({1, 2, 3});
  ::mpsm::Run ri{ri_tuples.data(), ri_tuples.size(), 0};
  auto s0 = SortedKeys({1});
  auto s1 = SortedKeys({3, 3});
  RunSet s_runs = {::mpsm::Run{s0.data(), s0.size(), 0},
                   ::mpsm::Run{s1.data(), s1.size(), 0}};

  {
    CountFactory counts(1);
    RunJoinOptions options;
    options.kind = JoinKind::kLeftAnti;
    EXPECT_EQ(JoinPrivateAgainstRuns(ri, s_runs, 0, options,
                                     counts.ConsumerForWorker(0), 0,
                                     nullptr),
              1u);  // key 2 unmatched
  }
  {
    CountFactory counts(1);
    RunJoinOptions options;
    options.kind = JoinKind::kLeftOuter;
    EXPECT_EQ(JoinPrivateAgainstRuns(ri, s_runs, 0, options,
                                     counts.ConsumerForWorker(0), 0,
                                     nullptr),
              4u);  // 1 match + 2 matches for key 3 + 1 unmatched
  }
}

// --------------------------------------------------------- consumers

TEST(ConsumerTest, MaxPayloadSumPicksGroupMax) {
  MaxPayloadSumFactory factory(2);
  auto& c0 = factory.ConsumerForWorker(0);
  auto& c1 = factory.ConsumerForWorker(1);

  Tuple r{1, 100};
  std::vector<Tuple> group = {{1, 5}, {1, 50}, {1, 7}};
  c0.OnMatch(r, group.data(), group.size());
  Tuple r2{2, 10};
  Tuple s2{2, 30};
  c1.OnMatch(r2, &s2, 1);

  EXPECT_EQ(factory.Result().value_or(0), 150u);  // 100 + 50
}

TEST(ConsumerTest, MaxPayloadSumEmptyIsNullopt) {
  MaxPayloadSumFactory factory(3);
  EXPECT_FALSE(factory.Result().has_value());
}

TEST(ConsumerTest, MaxPayloadSumUnmatchedCountsRPayloadOnly) {
  MaxPayloadSumFactory factory(1);
  factory.ConsumerForWorker(0).OnUnmatchedR(Tuple{1, 77});
  EXPECT_EQ(factory.Result().value_or(0), 77u);
}

TEST(ConsumerTest, CountSumsAcrossWorkers) {
  CountFactory factory(2);
  Tuple r{1, 0};
  std::vector<Tuple> group = {{1, 0}, {1, 0}};
  factory.ConsumerForWorker(0).OnMatch(r, group.data(), 2);
  factory.ConsumerForWorker(1).OnMatch(r, group.data(), 1);
  factory.ConsumerForWorker(1).OnUnmatchedR(r);
  EXPECT_EQ(factory.Result(), 4u);
}

TEST(ConsumerTest, MaterializePreservesPerWorkerOrder) {
  MaterializeFactory factory(2);
  Tuple r{3, 30};
  std::vector<Tuple> group = {{3, 1}, {3, 2}};
  factory.ConsumerForWorker(1).OnMatch(r, group.data(), 2);
  factory.ConsumerForWorker(1).OnUnmatchedR(Tuple{9, 90});

  EXPECT_TRUE(factory.RowsOfWorker(0).empty());
  const auto& rows = factory.RowsOfWorker(1);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (OutputRow{3, 30, 1}));
  EXPECT_EQ(rows[1], (OutputRow{3, 30, 2}));
  EXPECT_EQ(rows[2], (OutputRow{9, 90, std::nullopt}));
  EXPECT_EQ(factory.AllRows().size(), 3u);
}

}  // namespace
}  // namespace mpsm

// FlakyBackend: the shared fault-injection AsyncIoBackend for tests
// (io_test.cc, bufferpool_test.cc, recovery_test.cc).
//
// Wraps a real sync backend and injects failures by policy:
//   - periodic:  every Nth read / write / flush fails (the original
//     io_test.cc mode, exercising steady-state error propagation),
//   - fail-once: the first N reads / writes fail then the backend
//     recovers (the IoScheduler transient-retry satellite — injected
//     with kUnavailable these must not fail the query),
//   - torn write: a failed write first persists only the front half of
//     its bytes, modeling a crash mid-pwritev; recovery must detect
//     the torn page via checksums, never trust it.
#pragma once

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "io/backend_factories.h"
#include "io/io_backend.h"
#include "util/status.h"

namespace mpsm::io {

class FlakyBackend final : public AsyncIoBackend {
 public:
  struct Options {
    /// Every Nth read / write / flush submission fails; 0 disables.
    uint32_t read_failure_period = 0;
    uint32_t write_failure_period = 0;
    uint32_t flush_failure_period = 0;
    /// The first N reads / writes fail, later ones succeed (transient
    /// fault the scheduler's bounded retry should absorb).
    uint32_t fail_once_reads = 0;
    uint32_t fail_once_writes = 0;
    /// Status code injected failures carry (kIoError models a dying
    /// device; kUnavailable an EINTR/EAGAIN-class transient).
    StatusCode failure_code = StatusCode::kIoError;
    /// Failed writes persist the front half of their bytes first — a
    /// torn write. Only meaningful for write failures.
    bool torn_writes = false;
  };

  FlakyBackend(size_t queue_depth, Options options)
      : inner_(CreateSyncBackend(queue_depth)), options_(options) {}

  /// Back-compat shorthand: periodic EIO on reads (and writes).
  FlakyBackend(size_t queue_depth, uint32_t failure_period,
               uint32_t write_failure_period = 0)
      : FlakyBackend(queue_depth, Options{failure_period,
                                          write_failure_period}) {}

  Status SubmitRead(const IoRead& read) override {
    const uint32_t n = ++reads_;
    if (n <= options_.fail_once_reads ||
        (options_.read_failure_period != 0 &&
         n % options_.read_failure_period == 0)) {
      InjectFailure(read.user_data, "injected read fault");
      return Status::OK();
    }
    return inner_->SubmitRead(read);
  }

  Status SubmitWrite(const IoWrite& write) override {
    const uint32_t n = ++writes_;
    if (n <= options_.fail_once_writes ||
        (options_.write_failure_period != 0 &&
         n % options_.write_failure_period == 0)) {
      if (options_.torn_writes) TearWrite(write);
      InjectFailure(write.user_data, "injected write fault");
      return Status::OK();
    }
    return inner_->SubmitWrite(write);
  }

  Status SubmitFlush(const IoFlush& flush) override {
    if (options_.flush_failure_period != 0 &&
        ++flushes_ % options_.flush_failure_period == 0) {
      InjectFailure(flush.user_data, "injected flush fault");
      return Status::OK();
    }
    return inner_->SubmitFlush(flush);
  }

  size_t PollCompletions(IoCompletion* out, size_t max,
                         bool block) override {
    size_t n = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      while (n < max && !failed_.empty()) {
        out[n++] = std::move(failed_.front());
        failed_.erase(failed_.begin());
      }
    }
    if (n < max) {
      n += inner_->PollCompletions(out + n, max - n, block && n == 0);
    }
    return n;
  }

  size_t InFlight() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return failed_.size() + inner_->InFlight();
  }

  size_t queue_depth() const override { return inner_->queue_depth(); }
  IoBackendKind kind() const override { return inner_->kind(); }

  uint32_t reads_seen() const { return reads_.load(); }
  uint32_t writes_seen() const { return writes_.load(); }

 private:
  void InjectFailure(uint64_t user_data, const char* what) {
    IoCompletion failed;
    failed.user_data = user_data;
    failed.status = options_.failure_code == StatusCode::kUnavailable
                        ? Status::Unavailable(what)
                        : Status::IoError(what);
    std::lock_guard<std::mutex> lock(mu_);
    failed_.push_back(std::move(failed));
  }

  /// Persists the front half of the write's bytes — what a crash in
  /// the middle of a pwritev leaves on disk.
  void TearWrite(const IoWrite& write) {
    size_t remaining = write.TotalBytes() / 2;
    uint64_t offset = write.offset;
    for (uint32_t i = 0; i < write.iov_count && remaining > 0; ++i) {
      const size_t n = std::min(remaining, write.iov[i].iov_len);
      (void)!::pwrite(write.fd, write.iov[i].iov_base, n,
                      static_cast<off_t>(offset));
      offset += write.iov[i].iov_len;
      remaining -= n;
    }
  }

  std::unique_ptr<AsyncIoBackend> inner_;
  const Options options_;
  std::atomic<uint32_t> reads_{0};
  std::atomic<uint32_t> writes_{0};
  std::atomic<uint32_t> flushes_{0};
  mutable std::mutex mu_;
  std::vector<IoCompletion> failed_;
};

}  // namespace mpsm::io

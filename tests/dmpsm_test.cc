// D-MPSM and its disk substrate: page store round trips, page index
// ordering, staging pipeline lifecycle, and end-to-end join equality
// with the in-memory algorithms under tight RAM budgets.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "baseline/reference_join.h"
#include "bufferpool/buffer_pool.h"
#include "core/consumers.h"
#include "disk/d_mpsm.h"
#include "disk/page_index.h"
#include "disk/page_store.h"
#include "disk/staging_pipeline.h"
#include "io/io_scheduler.h"
#include "numa/topology.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace mpsm {
namespace {

using disk::DMpsmJoin;
using disk::DMpsmOptions;
using disk::DMpsmReport;
using disk::PageIndex;
using disk::PageIndexEntry;
using disk::PageStore;
using disk::PageStoreOptions;
using disk::StagingPipeline;

// -------------------------------------------------------- page store

TEST(PageStoreTest, RoundTripsPages) {
  PageStoreOptions options;
  options.tuples_per_page = 8;
  PageStore store(options);
  ASSERT_TRUE(store.Open().ok());

  std::vector<Tuple> page1, page2;
  for (uint64_t i = 0; i < 8; ++i) page1.push_back(Tuple{i, i * 10});
  for (uint64_t i = 0; i < 5; ++i) page2.push_back(Tuple{100 + i, i});

  auto id1 = store.WritePage(page1.data(), page1.size());
  auto id2 = store.WritePage(page2.data(), page2.size());
  ASSERT_TRUE(id1.ok() && id2.ok());
  EXPECT_NE(*id1, *id2);
  EXPECT_EQ(store.num_pages(), 2u);

  std::vector<Tuple> out(8);
  auto count = store.ReadPage(*id2, out.data());
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(out[i], page2[i]);

  count = store.ReadPage(*id1, out.data());
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 8u);
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(out[i], page1[i]);

  const auto io = store.io_stats();
  EXPECT_EQ(io.pages_written, 2u);
  EXPECT_EQ(io.pages_read, 2u);
}

TEST(PageStoreTest, RejectsOverflowAndBadIds) {
  PageStoreOptions options;
  options.tuples_per_page = 4;
  PageStore store(options);
  ASSERT_TRUE(store.Open().ok());

  std::vector<Tuple> tuples(5, Tuple{1, 2});
  EXPECT_FALSE(store.WritePage(tuples.data(), 5).ok());

  std::vector<Tuple> out(4);
  EXPECT_FALSE(store.ReadPage(7, out.data()).ok());
}

TEST(PageStoreTest, ConcurrentAppendsAllocateDistinctPages) {
  PageStoreOptions options;
  options.tuples_per_page = 16;
  PageStore store(options);
  ASSERT_TRUE(store.Open().ok());

  constexpr int kThreads = 8;
  constexpr int kPagesEach = 50;
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int p = 0; p < kPagesEach; ++p) {
        // Page content encodes (thread, page) for verification.
        std::vector<Tuple> tuples(16, Tuple{static_cast<uint64_t>(t),
                                            static_cast<uint64_t>(p)});
        if (!store.WritePage(tuples.data(), tuples.size()).ok()) {
          failed = true;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(failed);
  EXPECT_EQ(store.num_pages(),
            static_cast<uint64_t>(kThreads) * kPagesEach);

  // Every page is intact (single writer per page).
  std::vector<Tuple> out(16);
  for (uint64_t id = 0; id < store.num_pages(); ++id) {
    auto count = store.ReadPage(id, out.data());
    ASSERT_TRUE(count.ok());
    ASSERT_EQ(*count, 16u);
    for (size_t i = 1; i < 16; ++i) EXPECT_EQ(out[i], out[0]);
  }
}

// -------------------------------------------------------- page index

TEST(PageIndexTest, FinalizeSortsByKeyThenRun) {
  PageIndex index;
  index.Add(PageIndexEntry{50, 1, 10, 4});
  index.Add(PageIndexEntry{10, 2, 11, 4});
  index.Add(PageIndexEntry{50, 0, 12, 4});
  index.Add(PageIndexEntry{30, 0, 13, 4});
  index.Finalize();

  ASSERT_EQ(index.size(), 4u);
  EXPECT_EQ(index[0].min_key, 10u);
  EXPECT_EQ(index[1].min_key, 30u);
  EXPECT_EQ(index[2].min_key, 50u);
  EXPECT_EQ(index[2].run, 0u);  // ties broken by run
  EXPECT_EQ(index[3].run, 1u);
}

TEST(PageIndexTest, AppendMergesParts) {
  PageIndex a, b;
  a.Add(PageIndexEntry{1, 0, 0, 1});
  b.Add(PageIndexEntry{2, 1, 1, 1});
  a.Append(b);
  a.Finalize();
  EXPECT_EQ(a.size(), 2u);
}

// -------------------------------------------------- staging pipeline

TEST(StagingPipelineTest, DeliversAllPagesInOrderUnderTinyPool) {
  PageStoreOptions options;
  options.tuples_per_page = 4;
  PageStore store(options);
  ASSERT_TRUE(store.Open().ok());

  PageIndex index;
  constexpr uint64_t kPages = 40;
  for (uint64_t p = 0; p < kPages; ++p) {
    std::vector<Tuple> tuples(4, Tuple{p, p});
    auto id = store.WritePage(tuples.data(), tuples.size());
    ASSERT_TRUE(id.ok());
    index.Add(PageIndexEntry{p, 0, *id, 4});
  }
  index.Finalize();

  constexpr uint32_t kConsumers = 3;
  io::IoSchedulerOptions io_options;
  io_options.backend = io::IoBackendKind::kThreadpool;
  io_options.completion_queues = 2;  // pool loads + write-backs
  auto scheduler = io::IoScheduler::Create(
      store.fd(), store.page_bytes(), store.io_delay_us(), io_options);
  ASSERT_TRUE(scheduler.ok());
  bufferpool::BufferPoolOptions pool_options;
  pool_options.frames = 8;
  auto pool = bufferpool::BufferPool::Create(&store, scheduler->get(),
                                             pool_options);
  ASSERT_TRUE(pool.ok());
  StagingPipeline pipeline(store, index, /*capacity_pages=*/2, kConsumers,
                           pool->get());
  pipeline.Start();

  std::atomic<bool> mismatch{false};
  std::vector<std::thread> consumers;
  for (uint32_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      for (size_t pos = 0; pos < kPages; ++pos) {
        const auto* frame = pipeline.Acquire(pos);
        if (frame == nullptr || frame->tuples.empty() ||
            frame->tuples[0].key != pos) {
          mismatch = true;
        }
        pipeline.Release(pos);
      }
    });
  }
  for (auto& thread : consumers) thread.join();
  EXPECT_FALSE(mismatch);
  EXPECT_TRUE(pipeline.status().ok());
  EXPECT_LE(pipeline.peak_resident_pages(), 2u);
}

// ------------------------------------------------------- d-mpsm join

class DMpsmTest : public testing::TestWithParam<
                      std::tuple<uint32_t, size_t, size_t>> {};

TEST_P(DMpsmTest, MatchesReferenceUnderRamBudget) {
  const auto [team_size, tuples_per_page, pool_pages] = GetParam();
  const auto topology = numa::Topology::Simulated(4, 16);

  workload::DatasetSpec spec;
  spec.r_tuples = 6000;
  spec.multiplicity = 2.0;
  spec.key_domain = 20000;
  spec.seed = 31 + team_size;
  const auto dataset = workload::Generate(topology, team_size, spec);

  WorkerTeam team(topology, team_size);
  DMpsmOptions options;
  options.tuples_per_page = tuples_per_page;
  options.pool_pages = pool_pages;
  CountFactory counts(team_size);
  DMpsmReport report;
  auto info = DMpsmJoin(options).Execute(team, dataset.r, dataset.s, counts,
                                         &report);
  ASSERT_TRUE(info.ok()) << info.status().ToString();

  CountFactory reference(1);
  const uint64_t expected = baseline::ReferenceJoin(
      dataset.r.ToVector(), dataset.s.ToVector(), JoinKind::kInner,
      reference.ConsumerForWorker(0));
  EXPECT_EQ(counts.Result(), expected);

  // RAM budget respected and everything was spooled + read back.
  EXPECT_LE(report.peak_pool_pages, pool_pages);
  EXPECT_GT(report.io.pages_written, 0u);
  EXPECT_GT(report.io.pages_read, 0u);
  // One index entry per spooled S page.
  uint64_t expected_s_pages = 0;
  for (uint32_t c = 0; c < dataset.s.num_chunks(); ++c) {
    expected_s_pages +=
        (dataset.s.chunk(c).size + tuples_per_page - 1) / tuples_per_page;
  }
  EXPECT_EQ(report.index_entries, expected_s_pages);
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, DMpsmTest,
    testing::Values(std::make_tuple(1u, 256u, 4u),
                    std::make_tuple(2u, 128u, 2u),
                    std::make_tuple(4u, 64u, 1u),   // minimal pool
                    std::make_tuple(4u, 256u, 8u),
                    std::make_tuple(8u, 512u, 16u)),
    [](const auto& info) {
      return "t" + std::to_string(std::get<0>(info.param)) + "_pp" +
             std::to_string(std::get<1>(info.param)) + "_pool" +
             std::to_string(std::get<2>(info.param));
    });

TEST(DMpsmTest, KernelKnobsMatchReference) {
  // The disk variant's sort/prefetch knobs (docs/tuning.md) must not
  // change the join result, including the scalar fallbacks.
  const auto topology = numa::Topology::Simulated(2, 8);
  workload::DatasetSpec spec;
  spec.r_tuples = 5000;
  spec.multiplicity = 2.0;
  spec.key_domain = 16000;
  spec.seed = 91;
  const uint32_t team_size = 4;
  const auto dataset = workload::Generate(topology, team_size, spec);

  CountFactory reference(1);
  const uint64_t expected = baseline::ReferenceJoin(
      dataset.r.ToVector(), dataset.s.ToVector(), JoinKind::kInner,
      reference.ConsumerForWorker(0));

  for (sort::SortKind sort_kind :
       {sort::SortKind::kSinglePassRadix, sort::SortKind::kMultiPassRadix,
        sort::SortKind::kIntroSort}) {
    for (uint32_t prefetch : {0u, kDefaultMergePrefetchDistance}) {
      DMpsmOptions options;
      options.tuples_per_page = 128;
      options.pool_pages = 4;
      options.sort = sort_kind;
      options.merge_prefetch_distance = prefetch;

      WorkerTeam team(topology, team_size);
      CountFactory counts(team_size);
      const auto info =
          DMpsmJoin(options).Execute(team, dataset.r, dataset.s, counts);
      ASSERT_TRUE(info.ok()) << info.status().ToString();
      EXPECT_EQ(counts.Result(), expected)
          << sort::SortKindName(sort_kind) << "/pf" << prefetch;
    }
  }
}

TEST(DMpsmTest, StealingSchedulerMatchesStatic) {
  // Under the stealing scheduler the sort+spool phases are stealable
  // morsels and page fetches become consumer-executed tasks
  // (StagingPipeline consumer_loads); the join result must be
  // identical, and with a tiny pool the blocked consumers should be
  // performing loads themselves.
  const auto topology = numa::Topology::Simulated(2, 8);
  workload::DatasetSpec spec;
  spec.r_tuples = 8000;
  spec.multiplicity = 2.0;
  spec.key_domain = 24000;
  spec.seed = 17;
  const uint32_t team_size = 4;
  const auto dataset = workload::Generate(topology, team_size, spec);
  WorkerTeam team(topology, team_size);

  DMpsmOptions static_options;
  static_options.tuples_per_page = 64;
  static_options.pool_pages = 2;
  CountFactory static_counts(team_size);
  DMpsmReport static_report;
  ASSERT_TRUE(DMpsmJoin(static_options)
                  .Execute(team, dataset.r, dataset.s, static_counts,
                           &static_report)
                  .ok());
  EXPECT_EQ(static_report.consumer_page_loads, 0u);

  DMpsmOptions stealing_options = static_options;
  stealing_options.scheduler = SchedulerKind::kStealing;
  CountFactory stealing_counts(team_size);
  DMpsmReport stealing_report;
  ASSERT_TRUE(DMpsmJoin(stealing_options)
                  .Execute(team, dataset.r, dataset.s, stealing_counts,
                           &stealing_report)
                  .ok());

  EXPECT_GT(static_counts.Result(), 0u);
  EXPECT_EQ(stealing_counts.Result(), static_counts.Result());
  EXPECT_LE(stealing_report.peak_pool_pages, stealing_options.pool_pages);
  // With a 2-page pool and 4 consumers marching over 100+ pages, some
  // fetches land on consumers (the prefetch thread alone cannot keep
  // every wait non-productive).
  EXPECT_GT(stealing_report.consumer_page_loads, 0u);
}

TEST(DMpsmTest, MaxSumMatchesReference) {
  const auto topology = numa::Topology::Simulated(2, 4);
  workload::DatasetSpec spec;
  spec.r_tuples = 3000;
  spec.multiplicity = 3.0;
  spec.seed = 7;
  const auto dataset = workload::Generate(topology, 4, spec);

  WorkerTeam team(topology, 4);
  MaxPayloadSumFactory agg(4);
  auto info = DMpsmJoin().Execute(team, dataset.r, dataset.s, agg);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(agg.Result().value_or(0),
            baseline::ReferenceMaxPayloadSum(dataset.r.ToVector(),
                                             dataset.s.ToVector()));
}

TEST(DMpsmTest, SkewedKeysWithDuplicatesAcrossPageBoundaries) {
  // Heavy duplication forces equal keys to span page boundaries — the
  // trickiest case for the window/cursor logic.
  const auto topology = numa::Topology::Simulated(2, 4);
  const uint32_t team_size = 4;
  std::vector<Tuple> r_tuples, s_tuples;
  Xoshiro256 rng(99);
  for (int i = 0; i < 4000; ++i) {
    r_tuples.push_back(Tuple{rng.NextBounded(37), rng.Next() & 0xFFFF});
    s_tuples.push_back(Tuple{rng.NextBounded(37), rng.Next() & 0xFFFF});
  }
  // Chunked relations from explicit tuples.
  auto make_relation = [&](const std::vector<Tuple>& tuples) {
    Relation rel = Relation::Allocate(topology, tuples.size(), team_size);
    size_t offset = 0;
    for (uint32_t c = 0; c < rel.num_chunks(); ++c) {
      for (size_t i = 0; i < rel.chunk(c).size; ++i) {
        rel.chunk(c).data[i] = tuples[offset++];
      }
    }
    return rel;
  };
  Relation r = make_relation(r_tuples);
  Relation s = make_relation(s_tuples);

  WorkerTeam team(topology, team_size);
  DMpsmOptions options;
  options.tuples_per_page = 32;  // many boundary-spanning groups
  options.pool_pages = 2;
  CountFactory counts(team_size);
  auto info = DMpsmJoin(options).Execute(team, r, s, counts);
  ASSERT_TRUE(info.ok()) << info.status().ToString();

  CountFactory reference(1);
  EXPECT_EQ(counts.Result(),
            baseline::ReferenceJoin(r_tuples, s_tuples, JoinKind::kInner,
                                    reference.ConsumerForWorker(0)));
}

TEST(DMpsmTest, EmptyInputs) {
  const auto topology = numa::Topology::Simulated(2, 4);
  WorkerTeam team(topology, 4);
  Relation empty = Relation::Allocate(topology, 0, 4);

  workload::DatasetSpec spec;
  spec.r_tuples = 500;
  spec.multiplicity = 1.0;
  const auto dataset = workload::Generate(topology, 4, spec);

  CountFactory counts(4);
  auto info = DMpsmJoin().Execute(team, empty, dataset.s, counts);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(counts.Result(), 0u);

  CountFactory counts2(4);
  info = DMpsmJoin().Execute(team, dataset.r, empty, counts2);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(counts2.Result(), 0u);
}

TEST(DMpsmTest, JoinsRelationManyTimesThePoolBudget) {
  // ISSUE acceptance: a relation at least 4x the configured pool
  // budget joins correctly, with clock eviction and async write-back
  // doing real work along the way (docs/storage.md).
  const auto topology = numa::Topology::Simulated(2, 8);
  constexpr uint32_t kTeam = 4;
  workload::DatasetSpec spec;
  spec.r_tuples = 6000;
  spec.multiplicity = 2.0;
  spec.key_domain = 20000;
  spec.seed = 97;
  const auto dataset = workload::Generate(topology, kTeam, spec);

  DMpsmOptions options;
  options.tuples_per_page = 64;
  options.pool_budget_bytes = 48 << 10;
  // Both inputs spool in full, so the on-disk footprint dwarfs the
  // pool: 18000 tuples * 16 B = 281 KB >= 4 * 48 KB.
  const uint64_t spool_bytes =
      (dataset.r.size() + dataset.s.size()) * sizeof(Tuple);
  ASSERT_GE(spool_bytes, 4 * options.pool_budget_bytes);

  WorkerTeam team(topology, kTeam);
  CountFactory counts(kTeam);
  DMpsmReport report;
  auto info = DMpsmJoin(options).Execute(team, dataset.r, dataset.s, counts,
                                         &report);
  ASSERT_TRUE(info.ok()) << info.status().ToString();

  CountFactory reference(1);
  const uint64_t expected = baseline::ReferenceJoin(
      dataset.r.ToVector(), dataset.s.ToVector(), JoinKind::kInner,
      reference.ConsumerForWorker(0));
  EXPECT_EQ(counts.Result(), expected);

  // The budget was honored and the pool actually cycled frames.
  const size_t page_bytes = 64 * sizeof(Tuple) + sizeof(uint64_t);
  EXPECT_LE(report.pool.frames * page_bytes, options.pool_budget_bytes);
  EXPECT_GT(report.pool.evictions, 0u);
  EXPECT_GT(report.pool.writebacks, 0u);
  EXPECT_GT(report.pool.misses, 0u);
}

TEST(DMpsmTest, AsyncWritebackReducesSpoolStalls) {
  // Spool-stall A/B: with a synthetic device delay, synchronous
  // spooling blocks a worker for every page write while the write-back
  // cache absorbs them in the background flusher.
  const auto topology = numa::Topology::Simulated(2, 8);
  constexpr uint32_t kTeam = 4;
  workload::DatasetSpec spec;
  spec.r_tuples = 2000;
  spec.multiplicity = 1.0;
  spec.seed = 41;
  const auto dataset = workload::Generate(topology, kTeam, spec);

  CountFactory reference(1);
  const uint64_t expected = baseline::ReferenceJoin(
      dataset.r.ToVector(), dataset.s.ToVector(), JoinKind::kInner,
      reference.ConsumerForWorker(0));

  DMpsmOptions options;
  options.tuples_per_page = 64;
  options.io_delay_us = 200;

  options.synchronous_spool = true;
  WorkerTeam sync_team(topology, kTeam);
  CountFactory sync_counts(kTeam);
  DMpsmReport sync_report;
  auto info = DMpsmJoin(options).Execute(sync_team, dataset.r, dataset.s,
                                         sync_counts, &sync_report);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(sync_counts.Result(), expected);
  // ~63 spooled pages at 200us each make for a very solid floor.
  EXPECT_GT(sync_report.spool_write_stall_ns, 1000000u);
  EXPECT_EQ(sync_report.pool.writebacks, 0u);

  options.synchronous_spool = false;
  WorkerTeam async_team(topology, kTeam);
  CountFactory async_counts(kTeam);
  DMpsmReport async_report;
  info = DMpsmJoin(options).Execute(async_team, dataset.r, dataset.s,
                                    async_counts, &async_report);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(async_counts.Result(), expected);
  EXPECT_GT(async_report.pool.writebacks, 0u);

  // The default pool has frame headroom beyond the spooled page count,
  // so appenders should (almost) never wait for a frame.
  EXPECT_LT(async_report.spool_write_stall_ns * 2,
            sync_report.spool_write_stall_ns);
}

TEST(DMpsmTest, RejectsInvalidOptions) {
  const auto topology = numa::Topology::Simulated(2, 4);
  WorkerTeam team(topology, 4);
  workload::DatasetSpec spec;
  spec.r_tuples = 100;
  const auto dataset = workload::Generate(topology, 4, spec);

  DMpsmOptions options;
  options.pool_pages = 0;
  CountFactory counts(4);
  auto info =
      DMpsmJoin(options).Execute(team, dataset.r, dataset.s, counts);
  EXPECT_FALSE(info.ok());
  EXPECT_EQ(info.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace mpsm

// The morsel-driven phase scheduler: claim ordering, locality-first
// dispatch, work stealing, the no-idle-while-work-remains invariant,
// exactly-once execution under real concurrency, and the PhasePipeline
// step machinery.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <vector>

#include "numa/topology.h"
#include "parallel/task_scheduler.h"
#include "parallel/worker_team.h"

namespace mpsm {
namespace {

numa::Topology Topo() { return numa::Topology::Simulated(4, 2); }

WorkerContext ContextFor(const numa::Topology& topology, uint32_t worker,
                         uint32_t team_size, WorkerStats* stats = nullptr) {
  WorkerContext ctx;
  ctx.worker_id = worker;
  ctx.team_size = team_size;
  ctx.core = topology.CoreForWorker(worker, team_size);
  ctx.node = topology.NodeOfCore(ctx.core);
  ctx.stats = stats;
  ctx.topology = &topology;
  return ctx;
}

std::vector<Morsel> HomedMorsels(std::vector<uint32_t> homes) {
  std::vector<Morsel> morsels;
  for (uint32_t i = 0; i < homes.size(); ++i) {
    morsels.push_back(Morsel{homes[i], i, 0, 0});
  }
  return morsels;
}

TEST(SchedulerKindTest, Names) {
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kStatic), "static");
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kStealing), "stealing");
}

TEST(SliceRangesTest, CoversExactlyWithoutOverlap) {
  const auto ranges = SliceRanges(100, 32);
  ASSERT_EQ(ranges.size(), 4u);
  uint64_t cursor = 0;
  for (const auto& [begin, end] : ranges) {
    EXPECT_EQ(begin, cursor);
    EXPECT_LE(end - begin, 32u);
    cursor = end;
  }
  EXPECT_EQ(cursor, 100u);
}

TEST(ResolveMorselTuplesTest, NonZeroKnobPassesThrough) {
  const std::vector<uint64_t> sizes{100, 200000, 5};
  EXPECT_EQ(ResolveMorselTuples(1234, sizes.data(), sizes.size()), 1234u);
  EXPECT_EQ(ResolveMorselTuples(1u << 14, nullptr, 0), uint64_t{1} << 14);
}

TEST(ResolveMorselTuplesTest, UniformSizesKeepTheDefault) {
  const std::vector<uint64_t> sizes(8, uint64_t{1} << 20);
  EXPECT_EQ(ResolveMorselTuples(0, sizes.data(), sizes.size()),
            kDefaultMorselTuples);
}

TEST(ResolveMorselTuplesTest, SkewShrinksTheSlice) {
  // One hot partition among seven tiny ones: the adaptive slice must
  // drop below the default so the surplus spreads, but never below the
  // claim-overhead floor.
  std::vector<uint64_t> sizes(8, 1000);
  sizes[3] = uint64_t{1} << 22;
  const uint64_t adaptive =
      ResolveMorselTuples(0, sizes.data(), sizes.size());
  EXPECT_LT(adaptive, kDefaultMorselTuples);
  EXPECT_GE(adaptive, kMinAdaptiveMorselTuples);

  const std::vector<uint64_t> uniform(8, uint64_t{1} << 22);
  EXPECT_GT(ResolveMorselTuples(0, uniform.data(), uniform.size()),
            adaptive);
}

TEST(ResolveMorselTuplesTest, DegenerateInputsFallBackToDefault) {
  EXPECT_EQ(ResolveMorselTuples(0, nullptr, 0), kDefaultMorselTuples);
  const std::vector<uint64_t> zeros(4, 0);
  EXPECT_EQ(ResolveMorselTuples(0, zeros.data(), zeros.size()),
            kDefaultMorselTuples);
}

TEST(SliceRangesTest, EmptyTotalYieldsOneEmptyRange) {
  const auto ranges = SliceRanges(0, 16);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], std::make_pair(uint64_t{0}, uint64_t{0}));
}

TEST(TaskSchedulerTest, StaticClaimsOwnMorselsInOrder) {
  const auto topology = Topo();
  TaskScheduler scheduler(topology, 4, SchedulerKind::kStatic);
  scheduler.Reset(HomedMorsels({0, 1, 0, 2}));

  PerfCounters counters;
  auto ctx0 = ContextFor(topology, 0, 4);
  const Morsel* first = scheduler.Claim(ctx0, counters);
  const Morsel* second = scheduler.Claim(ctx0, counters);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(first->task, 0u);
  EXPECT_EQ(second->task, 2u);
  // Static mode never crosses worker lists: worker 0 is done, even
  // though morsels remain for workers 1 and 2.
  EXPECT_EQ(scheduler.Claim(ctx0, counters), nullptr);
  EXPECT_EQ(counters.morsels_executed, 2u);
  EXPECT_EQ(counters.morsels_stolen, 0u);
  // ...and claims are free of atomics (commandment C3 in static mode).
  EXPECT_EQ(counters.sync_acquisitions, 0u);
  EXPECT_EQ(scheduler.remaining(), 2u);

  auto ctx3 = ContextFor(topology, 3, 4);
  EXPECT_EQ(scheduler.Claim(ctx3, counters), nullptr);
}

TEST(TaskSchedulerTest, StealingNeverIdlesWhileMorselsRemain) {
  const auto topology = Topo();
  TaskScheduler scheduler(topology, 4, SchedulerKind::kStealing);
  // Everything homed on worker 0 (node 0): a worker on another node
  // must drain it all by stealing rather than going idle.
  scheduler.Reset(HomedMorsels({0, 0, 0, 0, 0}));

  PerfCounters counters;
  auto ctx1 = ContextFor(topology, 1, 4);
  ASSERT_NE(ctx1.node, ContextFor(topology, 0, 4).node);
  size_t claimed = 0;
  while (scheduler.Claim(ctx1, counters) != nullptr) ++claimed;
  EXPECT_EQ(claimed, 5u);
  EXPECT_EQ(scheduler.remaining(), 0u);
  EXPECT_EQ(counters.morsels_executed, 5u);
  EXPECT_EQ(counters.morsels_stolen, 5u);   // every claim crossed nodes
  EXPECT_EQ(counters.sync_acquisitions, 5u);  // one atomic per claim
}

TEST(TaskSchedulerTest, StealingPrefersOwnNodeFirst) {
  const auto topology = Topo();
  TaskScheduler scheduler(topology, 4, SchedulerKind::kStealing);
  // Workers 0..3 land on nodes 0..3 (socket-major placement); tasks
  // 0/2 are local to worker 0, tasks 1/3 are on other nodes.
  scheduler.Reset(HomedMorsels({1, 0, 3, 0}));

  PerfCounters counters;
  auto ctx0 = ContextFor(topology, 0, 4);
  std::vector<uint32_t> order;
  while (const Morsel* m = scheduler.Claim(ctx0, counters)) {
    order.push_back(m->task);
  }
  ASSERT_EQ(order.size(), 4u);
  // Own node's queue (tasks 1 and 3, in queue order) drains first.
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(counters.morsels_stolen, 2u);
}

TEST(TaskSchedulerTest, ExactlyOnceUnderConcurrency) {
  const auto topology = Topo();
  const uint32_t team_size = 8;
  const uint32_t num_morsels = 4096;
  WorkerTeam team(topology, team_size);
  TaskScheduler scheduler(topology, team_size, SchedulerKind::kStealing);
  std::vector<uint32_t> homes(num_morsels);
  for (uint32_t i = 0; i < num_morsels; ++i) homes[i] = i % 3;  // skewed
  scheduler.Reset(HomedMorsels(homes));

  std::vector<std::vector<uint32_t>> claimed(team_size);
  team.Run([&](WorkerContext& ctx) {
    while (const Morsel* m =
               scheduler.Claim(ctx, ctx.Counters(kPhaseJoin))) {
      claimed[ctx.worker_id].push_back(m->task);
    }
  });

  std::vector<uint32_t> all;
  for (const auto& worker_claims : claimed) {
    all.insert(all.end(), worker_claims.begin(), worker_claims.end());
  }
  ASSERT_EQ(all.size(), num_morsels);
  std::sort(all.begin(), all.end());
  for (uint32_t i = 0; i < num_morsels; ++i) {
    EXPECT_EQ(all[i], i);  // every morsel claimed exactly once
  }
  EXPECT_EQ(scheduler.remaining(), 0u);
  const auto total = team.AggregateStats().TotalCounters();
  EXPECT_EQ(total.morsels_executed, num_morsels);
  EXPECT_EQ(total.sync_acquisitions, num_morsels);
}

TEST(PhasePipelineTest, StepsRunInOrderWithSerialCombine) {
  for (SchedulerKind kind :
       {SchedulerKind::kStatic, SchedulerKind::kStealing}) {
    const auto topology = Topo();
    const uint32_t team_size = 4;
    WorkerTeam team(topology, team_size);
    PhasePipeline pipeline(topology, team_size, kind);

    std::vector<uint64_t> produced(team_size, 0);
    uint64_t combined = 0;
    std::atomic<uint64_t> consumed{0};

    pipeline.AddPhase(
        kPhaseSortPublic,
        [&] {
          std::vector<Morsel> morsels;
          for (uint32_t w = 0; w < team_size; ++w) {
            morsels.push_back(Morsel{w, w, 0, 0});
          }
          return morsels;
        },
        [&](WorkerContext&, const Morsel& morsel) {
          produced[morsel.task] = morsel.task + 1;
        });
    pipeline.AddSerial(kPhasePartition, [&](WorkerContext&) {
      for (uint64_t v : produced) combined += v;
    });
    // Lazy factory: must observe the serial step's product.
    pipeline.AddPhase(
        kPhaseJoin,
        [&] {
          EXPECT_EQ(combined, 1u + 2 + 3 + 4);
          std::vector<Morsel> morsels;
          for (uint32_t w = 0; w < team_size; ++w) {
            morsels.push_back(Morsel{w, w, 0, combined});
          }
          return morsels;
        },
        [&](WorkerContext&, const Morsel& morsel) {
          consumed.fetch_add(morsel.end, std::memory_order_relaxed);
        },
        PhasePipeline::PhaseOptions{.eager = false});

    pipeline.Run(team);
    EXPECT_EQ(combined, 10u) << SchedulerKindName(kind);
    EXPECT_EQ(consumed.load(), 40u) << SchedulerKindName(kind);
  }
}

TEST(PhasePipelineTest, PinnedPhaseExecutesOnHomeWorker) {
  const auto topology = Topo();
  const uint32_t team_size = 4;
  WorkerTeam team(topology, team_size);
  PhasePipeline pipeline(topology, team_size, SchedulerKind::kStealing);

  std::vector<uint32_t> executor(team_size, ~0u);
  pipeline.AddPhase(
      kPhasePartition,
      [&] {
        // All morsels homed on worker 2: a stealing scheduler would let
        // others take them; pinned must not.
        std::vector<Morsel> morsels;
        for (uint32_t t = 0; t < team_size; ++t) {
          morsels.push_back(Morsel{t, t, 0, 0});
        }
        return morsels;
      },
      [&](WorkerContext& ctx, const Morsel& morsel) {
        executor[morsel.task] = ctx.worker_id;
      },
      PhasePipeline::PhaseOptions{.pinned = true});
  pipeline.Run(team);
  for (uint32_t t = 0; t < team_size; ++t) {
    EXPECT_EQ(executor[t], t);
  }
}

}  // namespace
}  // namespace mpsm

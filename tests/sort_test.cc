// The paper's Radix/IntroSort (§2.3): correctness across sizes and
// distributions, phase components, and structural properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "sort/radix_introsort.h"
#include "util/rng.h"

namespace mpsm::sort {
namespace {

enum class Dist {
  kUniform,
  kSorted,
  kReverse,
  kAllEqual,
  kFewDistinct,
  kSkewLow,
  kOrganPipe,
  kHighBitsOnly,
  kFullRange64,
};

const char* DistName(Dist d) {
  switch (d) {
    case Dist::kUniform: return "uniform";
    case Dist::kSorted: return "sorted";
    case Dist::kReverse: return "reverse";
    case Dist::kAllEqual: return "allequal";
    case Dist::kFewDistinct: return "fewdistinct";
    case Dist::kSkewLow: return "skewlow";
    case Dist::kOrganPipe: return "organpipe";
    case Dist::kHighBitsOnly: return "highbits";
    case Dist::kFullRange64: return "full64";
  }
  return "?";
}

std::vector<Tuple> MakeData(Dist dist, size_t n, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Tuple> data(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t key = 0;
    switch (dist) {
      case Dist::kUniform:
        key = rng.NextBounded(uint64_t{1} << 32);
        break;
      case Dist::kSorted:
        key = i;
        break;
      case Dist::kReverse:
        key = n - i;
        break;
      case Dist::kAllEqual:
        key = 42;
        break;
      case Dist::kFewDistinct:
        key = rng.NextBounded(7);
        break;
      case Dist::kSkewLow:
        key = rng.NextDouble() < 0.9 ? rng.NextBounded(100)
                                     : rng.NextBounded(uint64_t{1} << 30);
        break;
      case Dist::kOrganPipe:
        key = i < n / 2 ? i : n - i;
        break;
      case Dist::kHighBitsOnly:
        // Only the top byte varies: stresses the radix pass.
        key = rng.NextBounded(256) << 56;
        break;
      case Dist::kFullRange64:
        key = rng.Next();
        break;
    }
    data[i] = Tuple{key, i};  // payload records original position
  }
  return data;
}

// Checks that `sorted` is a key-sorted permutation of `original`.
void ExpectSortedPermutation(const std::vector<Tuple>& original,
                             std::vector<Tuple> sorted) {
  ASSERT_EQ(original.size(), sorted.size());
  EXPECT_TRUE(IsSortedByKey(sorted.data(), sorted.size()));
  // Permutation check via payloads (each payload unique in MakeData).
  auto expected = original;
  auto full_less = [](const Tuple& a, const Tuple& b) {
    return std::tie(a.key, a.payload) < std::tie(b.key, b.payload);
  };
  std::sort(expected.begin(), expected.end(), full_less);
  std::sort(sorted.begin(), sorted.end(), full_less);
  EXPECT_EQ(expected, sorted);
}

class RadixIntroSortTest
    : public testing::TestWithParam<std::tuple<Dist, size_t>> {};

TEST_P(RadixIntroSortTest, SortsCorrectly) {
  const auto [dist, n] = GetParam();
  const auto original = MakeData(dist, n, 17 + n);
  auto data = original;
  RadixIntroSort(data.data(), data.size());
  ExpectSortedPermutation(original, data);
}

TEST_P(RadixIntroSortTest, IntroSortAloneSortsCorrectly) {
  const auto [dist, n] = GetParam();
  const auto original = MakeData(dist, n, 31 + n);
  auto data = original;
  IntroSort(data.data(), data.size());
  ExpectSortedPermutation(original, data);
}

TEST_P(RadixIntroSortTest, MultiPassSortsCorrectly) {
  const auto [dist, n] = GetParam();
  const auto original = MakeData(dist, n, 47 + n);
  auto data = original;
  RadixIntroSortMultiPass(data.data(), data.size());
  ExpectSortedPermutation(original, data);
}

TEST_P(RadixIntroSortTest, MultiPassDeepRecursionSortsCorrectly) {
  // Tiny threshold + generous pass budget drives the recursion to its
  // maximum depth (shift 0 / all passes) on every distribution.
  const auto [dist, n] = GetParam();
  const auto original = MakeData(dist, n, 53 + n);
  auto data = original;
  RadixSortConfig config;
  config.repartition_threshold = 1;
  config.max_passes = 8;
  RadixIntroSortMultiPass(data.data(), data.size(), config);
  ExpectSortedPermutation(original, data);
}

TEST_P(RadixIntroSortTest, MultiPassSinglePassConfigSortsCorrectly) {
  // max_passes = 1 degenerates to the paper's single-pass pipeline.
  const auto [dist, n] = GetParam();
  const auto original = MakeData(dist, n, 59 + n);
  auto data = original;
  RadixSortConfig config;
  config.max_passes = 1;
  RadixIntroSortMultiPass(data.data(), data.size(), config);
  ExpectSortedPermutation(original, data);
}

TEST_P(RadixIntroSortTest, SortTuplesDispatchesAllKinds) {
  const auto [dist, n] = GetParam();
  for (SortKind kind : {SortKind::kSinglePassRadix, SortKind::kMultiPassRadix,
                        SortKind::kIntroSort}) {
    const auto original = MakeData(dist, n, 61 + n);
    auto data = original;
    SortTuples(data.data(), data.size(), kind);
    ExpectSortedPermutation(original, data);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RadixIntroSortTest,
    testing::Combine(testing::Values(Dist::kUniform, Dist::kSorted,
                                     Dist::kReverse, Dist::kAllEqual,
                                     Dist::kFewDistinct, Dist::kSkewLow,
                                     Dist::kOrganPipe, Dist::kHighBitsOnly,
                                     Dist::kFullRange64),
                     testing::Values<size_t>(0, 1, 2, 15, 16, 17, 100, 1000,
                                             65536)),
    [](const testing::TestParamInfo<std::tuple<Dist, size_t>>& info) {
      return std::string(DistName(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

// --------------------------------------------------------- components

TEST(InsertionSortTest, SortsSmallArrays) {
  for (size_t n : {0u, 1u, 2u, 5u, 16u, 40u}) {
    auto original = MakeData(Dist::kUniform, n, n);
    auto data = original;
    InsertionSort(data.data(), n);
    ExpectSortedPermutation(original, data);
  }
}

TEST(HeapSortTest, SortsAllDistributions) {
  for (Dist d : {Dist::kUniform, Dist::kReverse, Dist::kAllEqual,
                 Dist::kFewDistinct}) {
    auto original = MakeData(d, 2000, 5);
    auto data = original;
    HeapSort(data.data(), data.size());
    ExpectSortedPermutation(original, data);
  }
}

TEST(MsdRadixPartitionTest, BucketsArePureAndBoundsTight) {
  auto data = MakeData(Dist::kUniform, 50000, 3);
  const uint32_t shift = RadixShiftForMaxKey(uint64_t{1} << 32);
  const auto bounds = MsdRadixPartition(data.data(), data.size(), shift);

  EXPECT_EQ(bounds[0], 0u);
  EXPECT_EQ(bounds[kRadixBuckets], data.size());
  for (uint32_t b = 0; b < kRadixBuckets; ++b) {
    EXPECT_LE(bounds[b], bounds[b + 1]);
    for (size_t i = bounds[b]; i < bounds[b + 1]; ++i) {
      EXPECT_EQ((data[i].key >> shift) & 0xFF, b);
    }
  }
}

TEST(MsdRadixPartitionTest, IsPermutation) {
  const auto original = MakeData(Dist::kUniform, 10000, 11);
  auto data = original;
  MsdRadixPartition(data.data(), data.size(),
                    RadixShiftForMaxKey(uint64_t{1} << 32));
  auto a = original;
  auto b = data;
  auto full_less = [](const Tuple& x, const Tuple& y) {
    return std::tie(x.key, x.payload) < std::tie(y.key, y.payload);
  };
  std::sort(a.begin(), a.end(), full_less);
  std::sort(b.begin(), b.end(), full_less);
  EXPECT_EQ(a, b);
}

TEST(MsdRadixPartitionTest, PartitionOrderMatchesKeyOrder) {
  // After the MSD pass, bucket b's keys all precede bucket b+1's keys
  // (the property that makes bucket-local introsort sufficient).
  auto data = MakeData(Dist::kUniform, 20000, 13);
  uint64_t max_key = 0;
  for (const auto& t : data) max_key = std::max(max_key, t.key);
  const uint32_t shift = RadixShiftForMaxKey(max_key);
  const auto bounds = MsdRadixPartition(data.data(), data.size(), shift);
  uint64_t previous_max = 0;
  for (uint32_t b = 0; b < kRadixBuckets; ++b) {
    for (size_t i = bounds[b]; i < bounds[b + 1]; ++i) {
      EXPECT_GE(data[i].key >> shift, previous_max >> shift);
    }
    if (bounds[b + 1] > bounds[b]) {
      previous_max = uint64_t{b} << shift;
    }
  }
}

TEST(RadixShiftTest, SelectsTopEightSignificantBits) {
  EXPECT_EQ(RadixShiftForMaxKey(0), 0u);
  EXPECT_EQ(RadixShiftForMaxKey(255), 0u);
  EXPECT_EQ(RadixShiftForMaxKey(256), 1u);
  EXPECT_EQ(RadixShiftForMaxKey((uint64_t{1} << 32) - 1), 24u);
  EXPECT_EQ(RadixShiftForMaxKey(~uint64_t{0}), 56u);
}

TEST(RadixIntroSortMultiPassTest, RepartitionsHotBuckets) {
  // 2^17 tuples on a 32-bit domain leave each first-pass bucket with
  // ~512 tuples; a threshold of 64 forces the second pass everywhere.
  const size_t n = 1 << 17;
  const auto original = MakeData(Dist::kUniform, n, 71);
  auto data = original;
  RadixSortConfig config;
  config.repartition_threshold = 64;
  config.max_passes = 4;
  RadixIntroSortMultiPass(data.data(), data.size(), config);
  ExpectSortedPermutation(original, data);
}

TEST(RadixIntroSortMultiPassTest, AllEqualKeysTerminate) {
  // A bucket of equal keys can never shrink by re-partitioning; the
  // pass cap (and the shift-0 stop) must end the recursion.
  auto original = MakeData(Dist::kAllEqual, 100000, 73);
  auto data = original;
  RadixSortConfig config;
  config.repartition_threshold = 16;
  config.max_passes = 8;
  RadixIntroSortMultiPass(data.data(), data.size(), config);
  ExpectSortedPermutation(original, data);
}

TEST(SortCopyIntoTest, MatchesCopyThenSortAcrossKindsAndLocality) {
  // The fused copy+first-pass must equal memcpy + SortTuples for every
  // sort kind, for both the local (3-sweep fused scatter) and remote
  // (single-sweep copy, in-place pass) source paths, across sizes that
  // cover the tiny-input fallback and the multi-pass recursion.
  for (Dist dist : {Dist::kUniform, Dist::kAllEqual, Dist::kFewDistinct,
                    Dist::kFullRange64}) {
    for (size_t n : {size_t{0}, size_t{100}, size_t{5000}, size_t{80000}}) {
      const auto src = MakeData(dist, n, 77);
      auto expected = src;
      std::sort(expected.begin(), expected.end(), TupleKeyLess{});
      for (SortKind kind : {SortKind::kSinglePassRadix,
                            SortKind::kMultiPassRadix, SortKind::kIntroSort}) {
        for (bool src_is_local : {true, false}) {
          std::vector<Tuple> dst(n, Tuple{~0ull, ~0ull});
          SortCopyInto(src.data(), n, dst.data(), kind, {}, src_is_local);
          ASSERT_TRUE(IsSortedByKey(dst.data(), n))
              << DistName(dist) << " n=" << n << " " << SortKindName(kind)
              << (src_is_local ? " local" : " remote");
          for (size_t i = 0; i < n; ++i) {
            ASSERT_EQ(dst[i].key, expected[i].key) << i;
          }
        }
      }
    }
  }
}

TEST(SortKindNameTest, NamesAllKinds) {
  EXPECT_STREQ(SortKindName(SortKind::kSinglePassRadix),
               "single-pass-radix");
  EXPECT_STREQ(SortKindName(SortKind::kMultiPassRadix), "multi-pass-radix");
  EXPECT_STREQ(SortKindName(SortKind::kIntroSort), "introsort");
}

TEST(IsSortedByKeyTest, DetectsOrder) {
  std::vector<Tuple> sorted = {{1, 0}, {1, 9}, {2, 0}, {5, 0}};
  std::vector<Tuple> unsorted = {{1, 0}, {3, 0}, {2, 0}};
  EXPECT_TRUE(IsSortedByKey(sorted.data(), sorted.size()));
  EXPECT_FALSE(IsSortedByKey(unsorted.data(), unsorted.size()));
  EXPECT_TRUE(IsSortedByKey(nullptr, 0));
}

// Payload must travel with its key (16-byte tuple moves, not key-only).
TEST(RadixIntroSortTest, PayloadsStayAttached) {
  auto data = MakeData(Dist::kUniform, 5000, 23);
  std::vector<uint64_t> expected_payload_by_key(5000);
  // Make keys unique so the key->payload map is well defined.
  for (size_t i = 0; i < data.size(); ++i) {
    data[i].key = (data[i].key << 13) | i;
  }
  auto original = data;
  RadixIntroSort(data.data(), data.size());
  for (const Tuple& t : data) {
    EXPECT_EQ(t.payload, original[t.key & 0x1FFF].payload);
  }
}

}  // namespace
}  // namespace mpsm::sort

// Buffer pool invariants (docs/storage.md): pinned frames are never
// evicted, dirty frames are written back before their frame is reused,
// appended pages are readable through the pool while still dirty, and
// a randomized multi-worker pin/read/append stress agrees with a
// direct-read oracle after FlushAll.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "bufferpool/buffer_pool.h"
#include "disk/page_store.h"
#include "flaky_backend.h"
#include "io/io_scheduler.h"
#include "util/rng.h"

namespace mpsm {
namespace {

using bufferpool::BufferPool;
using bufferpool::BufferPoolOptions;
using bufferpool::FrameId;
using bufferpool::kInvalidFrame;
using bufferpool::PagePinCompletion;
using bufferpool::PagePinRequest;
using disk::PageId;
using disk::PageStore;
using disk::PageStoreOptions;

constexpr size_t kTuplesPerPage = 4;

/// A store + scheduler + pool wired together the way d_mpsm does it:
/// two scheduler completion queues owned by the pool (loads +
/// write-backs), pin completions on the pool's own client queues.
struct PoolFixture {
  PoolFixture(size_t frames, uint32_t client_queues,
              size_t flush_batch_pages = 2) {
    PageStoreOptions store_options;
    store_options.tuples_per_page = kTuplesPerPage;
    store = std::make_unique<PageStore>(store_options);
    EXPECT_TRUE(store->Open().ok());

    io::IoSchedulerOptions io_options;
    io_options.backend = io::IoBackendKind::kThreadpool;
    io_options.completion_queues = 2;  // pool loads + write-backs
    auto sched = io::IoScheduler::Create(store->fd(), store->page_bytes(),
                                         store->io_delay_us(), io_options);
    EXPECT_TRUE(sched.ok());
    scheduler = std::move(*sched);

    BufferPoolOptions pool_options;
    pool_options.frames = frames;
    pool_options.client_queues = client_queues;
    pool_options.flush_batch_pages = flush_batch_pages;
    auto created =
        BufferPool::Create(store.get(), scheduler.get(), pool_options);
    EXPECT_TRUE(created.ok());
    pool = std::move(*created);
  }

  ~PoolFixture() {
    if (pool != nullptr) {
      EXPECT_TRUE(pool->Close().ok());
    }
  }

  /// One synchronous pin through the async API: submit, pump until the
  /// completion lands on `queue`, and return it.
  PagePinCompletion Pin(PageId page, uint32_t queue = 0) {
    PagePinRequest request;
    request.page = page;
    request.user_data = page;
    request.queue = queue;
    EXPECT_TRUE(pool->SubmitPins(&request, 1).ok());
    PagePinCompletion completion;
    while (pool->DrainPins(queue, &completion, 1) == 0) {
      EXPECT_TRUE(pool->Pump(/*block=*/true).ok());
    }
    EXPECT_EQ(completion.user_data, page);
    return completion;
  }

  std::unique_ptr<PageStore> store;
  std::unique_ptr<io::IoScheduler> scheduler;
  std::unique_ptr<BufferPool> pool;
};

/// Deterministic page payload: tuple i of page `page` is
/// {page * 100 + i, page}.
std::vector<Tuple> PagePayload(uint64_t page, size_t count = kTuplesPerPage) {
  std::vector<Tuple> tuples;
  for (size_t i = 0; i < count; ++i) {
    tuples.push_back(Tuple{page * 100 + i, page});
  }
  return tuples;
}

/// Decodes a pinned frame and checks it holds PagePayload(page).
void ExpectFrameHoldsPage(PoolFixture& fix, FrameId frame, uint64_t page) {
  std::vector<Tuple> out(kTuplesPerPage);
  auto count = fix.store->DecodePage(fix.pool->Data(frame), out.data());
  ASSERT_TRUE(count.ok());
  const auto expected = PagePayload(page);
  ASSERT_EQ(*count, expected.size());
  for (size_t i = 0; i < expected.size(); ++i) EXPECT_EQ(out[i], expected[i]);
}

// ------------------------------------------------------------ options

TEST(BufferPoolOptionsTest, ValidateRejectsIllegalKnobs) {
  BufferPoolOptions ok;
  EXPECT_TRUE(ok.Validate().ok());

  BufferPoolOptions no_frames = ok;
  no_frames.frames = 0;
  EXPECT_FALSE(no_frames.Validate().ok());

  BufferPoolOptions no_queues = ok;
  no_queues.client_queues = 0;
  EXPECT_FALSE(no_queues.Validate().ok());

  BufferPoolOptions no_batch = ok;
  no_batch.flush_batch_pages = 0;
  EXPECT_FALSE(no_batch.Validate().ok());

  BufferPoolOptions aliased = ok;
  aliased.scheduler_write_queue = aliased.scheduler_load_queue;
  EXPECT_FALSE(aliased.Validate().ok());
}

TEST(BufferPoolOptionsTest, CreateRejectsSchedulerWithoutPoolQueues) {
  PageStoreOptions store_options;
  store_options.tuples_per_page = kTuplesPerPage;
  PageStore store(store_options);
  ASSERT_TRUE(store.Open().ok());

  io::IoSchedulerOptions io_options;
  io_options.completion_queues = 1;  // pool needs queues 0 and 1
  auto scheduler = io::IoScheduler::Create(
      store.fd(), store.page_bytes(), store.io_delay_us(), io_options);
  ASSERT_TRUE(scheduler.ok());

  auto pool =
      BufferPool::Create(&store, scheduler->get(), BufferPoolOptions{});
  EXPECT_FALSE(pool.ok());
}

// --------------------------------------------------------- invariants

TEST(BufferPoolTest, HitsServeRepinsWithoutDeviceReads) {
  PoolFixture fix(/*frames=*/4, /*client_queues=*/1);
  std::vector<PageId> pages;
  for (uint64_t p = 0; p < 3; ++p) {
    const auto tuples = PagePayload(p);
    auto id = fix.store->WritePage(tuples.data(), tuples.size());
    ASSERT_TRUE(id.ok());
    pages.push_back(*id);
  }

  for (const PageId page : pages) {
    auto completion = fix.Pin(page);
    ASSERT_TRUE(completion.status.ok());
    ExpectFrameHoldsPage(fix, completion.frame, page);
    fix.pool->Unpin(completion.frame);
  }
  const auto cold = fix.pool->stats();
  EXPECT_EQ(cold.misses, pages.size());
  EXPECT_EQ(cold.hits, 0u);

  // Everything fits in the 4 frames, so the second pass is all hits.
  for (const PageId page : pages) {
    auto completion = fix.Pin(page);
    ASSERT_TRUE(completion.status.ok());
    ExpectFrameHoldsPage(fix, completion.frame, page);
    fix.pool->Unpin(completion.frame);
  }
  const auto warm = fix.pool->stats();
  EXPECT_EQ(warm.misses, pages.size());
  EXPECT_EQ(warm.hits, pages.size());
}

TEST(BufferPoolTest, PinnedFramesAreNeverEvicted) {
  PoolFixture fix(/*frames=*/2, /*client_queues=*/1);
  constexpr uint64_t kPages = 12;
  std::vector<PageId> pages;
  for (uint64_t p = 0; p < kPages; ++p) {
    const auto tuples = PagePayload(p);
    auto id = fix.store->WritePage(tuples.data(), tuples.size());
    ASSERT_TRUE(id.ok());
    pages.push_back(*id);
  }

  // Hold a pin on page 0 while churning every other page through the
  // one remaining frame.
  auto held = fix.Pin(pages[0]);
  ASSERT_TRUE(held.status.ok());
  for (uint64_t p = 1; p < kPages; ++p) {
    auto completion = fix.Pin(pages[p]);
    ASSERT_TRUE(completion.status.ok());
    EXPECT_NE(completion.frame, held.frame);
    ExpectFrameHoldsPage(fix, completion.frame, p);
    fix.pool->Unpin(completion.frame);
    // The held frame still maps page 0 with its bytes intact.
    ExpectFrameHoldsPage(fix, held.frame, 0);
  }
  const auto stats = fix.pool->stats();
  EXPECT_GT(stats.evictions, 0u);

  // The pinned page stayed in the table: re-pinning it is a hit on the
  // very same frame.
  const uint64_t hits_before = stats.hits;
  auto again = fix.Pin(pages[0]);
  ASSERT_TRUE(again.status.ok());
  EXPECT_EQ(again.frame, held.frame);
  EXPECT_EQ(fix.pool->stats().hits, hits_before + 1);
  fix.pool->Unpin(again.frame);
  fix.pool->Unpin(held.frame);
}

TEST(BufferPoolTest, DirtyFramesAreFlushedBeforeReuse) {
  PoolFixture fix(/*frames=*/4, /*client_queues=*/1,
                  /*flush_batch_pages=*/2);
  // Appending 4x the frame budget forces every frame through the
  // dirty -> written-back -> evicted -> reused cycle.
  constexpr uint64_t kPages = 16;
  std::vector<PageId> pages;
  for (uint64_t p = 0; p < kPages; ++p) {
    const auto tuples = PagePayload(p);
    auto id = fix.pool->AppendPage(tuples.data(), tuples.size());
    ASSERT_TRUE(id.ok());
    pages.push_back(*id);
  }
  ASSERT_TRUE(fix.pool->FlushAll().ok());

  const auto stats = fix.pool->stats();
  EXPECT_EQ(stats.append_pages, kPages);
  // Every appended page was written back exactly once, and reusing the
  // flushed frames counted as evictions.
  EXPECT_EQ(stats.writebacks, kPages);
  EXPECT_GT(stats.evictions, 0u);

  // Direct-read oracle: had a dirty frame been reused before its
  // write-back, the device would hold a stale (zero) page here.
  std::vector<Tuple> out(kTuplesPerPage);
  for (uint64_t p = 0; p < kPages; ++p) {
    auto count = fix.store->ReadPage(pages[p], out.data());
    ASSERT_TRUE(count.ok());
    const auto expected = PagePayload(p);
    ASSERT_EQ(*count, expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(out[i], expected[i]);
    }
  }
}

TEST(BufferPoolTest, AppendedPagesAreReadableWhileDirty) {
  PoolFixture fix(/*frames=*/8, /*client_queues=*/1);
  std::vector<PageId> pages;
  for (uint64_t p = 0; p < 4; ++p) {
    const auto tuples = PagePayload(p);
    auto id = fix.pool->AppendPage(tuples.data(), tuples.size());
    ASSERT_TRUE(id.ok());
    pages.push_back(*id);
  }

  // No FlushAll: the pins must be served from the dirty resident
  // frames, not the device.
  for (uint64_t p = 0; p < 4; ++p) {
    auto completion = fix.Pin(pages[p]);
    ASSERT_TRUE(completion.status.ok());
    ExpectFrameHoldsPage(fix, completion.frame, p);
    fix.pool->Unpin(completion.frame);
  }
  const auto stats = fix.pool->stats();
  EXPECT_EQ(stats.hits, 4u);
  EXPECT_EQ(stats.misses, 0u);
}

// ------------------------------------------------------------- stress

TEST(BufferPoolStressTest, RandomizedWorkersMatchDirectReadOracle) {
  PoolFixture fix(/*frames=*/6, /*client_queues=*/4,
                  /*flush_batch_pages=*/2);
  constexpr uint64_t kSeedPages = 32;
  constexpr uint32_t kThreads = 4;
  constexpr int kOpsPerThread = 300;

  std::vector<PageId> seed_pages;
  for (uint64_t p = 0; p < kSeedPages; ++p) {
    const auto tuples = PagePayload(p);
    auto id = fix.store->WritePage(tuples.data(), tuples.size());
    ASSERT_TRUE(id.ok());
    seed_pages.push_back(*id);
  }

  // Each worker mixes pins of the seed pages with appends of its own
  // pages (payload keyed by a thread-unique tag the oracle re-checks
  // after FlushAll). All traffic contends for 6 frames.
  std::atomic<bool> failed{false};
  std::vector<std::vector<PageId>> appended(kThreads);
  std::vector<std::thread> workers;
  for (uint32_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(0x9E1ull * (t + 1));
      std::vector<Tuple> out(kTuplesPerPage);
      for (int op = 0; op < kOpsPerThread && !failed; ++op) {
        if (rng.Next() % 4 == 0) {
          // Append a page whose constant payload names this thread and
          // op; the oracle verifies it on the device after FlushAll.
          const uint64_t tag = (uint64_t{t} << 32) | uint64_t(op);
          std::vector<Tuple> tuples(kTuplesPerPage, Tuple{tag, tag});
          auto id = fix.pool->AppendPage(tuples.data(), tuples.size());
          if (!id.ok()) {
            failed = true;
            break;
          }
          appended[t].push_back(*id);
        } else {
          const PageId page = seed_pages[rng.Next() % kSeedPages];
          PagePinRequest request;
          request.page = page;
          request.user_data = page;
          request.queue = t;
          if (!fix.pool->SubmitPins(&request, 1).ok()) {
            failed = true;
            break;
          }
          PagePinCompletion completion;
          while (fix.pool->DrainPins(t, &completion, 1) == 0) {
            if (!fix.pool->Pump(/*block=*/true).ok()) {
              failed = true;
              break;
            }
          }
          if (failed) break;
          if (!completion.status.ok() ||
              completion.frame == kInvalidFrame) {
            failed = true;
            break;
          }
          auto count =
              fix.store->DecodePage(fix.pool->Data(completion.frame),
                                    out.data());
          fix.pool->Unpin(completion.frame);
          if (!count.ok() || *count != kTuplesPerPage ||
              out[0].key != page * 100 || out[0].payload != page) {
            failed = true;
            break;
          }
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  ASSERT_FALSE(failed);

  // Oracle: after FlushAll every page — seed and appended — must be
  // bit-correct on the device.
  ASSERT_TRUE(fix.pool->FlushAll().ok());
  std::vector<Tuple> out(kTuplesPerPage);
  for (uint64_t p = 0; p < kSeedPages; ++p) {
    auto count = fix.store->ReadPage(seed_pages[p], out.data());
    ASSERT_TRUE(count.ok());
    ASSERT_EQ(*count, kTuplesPerPage);
    EXPECT_EQ(out[0].key, p * 100);
    EXPECT_EQ(out[0].payload, p);
  }
  size_t total_appended = 0;
  for (uint32_t t = 0; t < kThreads; ++t) {
    for (const PageId page : appended[t]) {
      auto count = fix.store->ReadPage(page, out.data());
      ASSERT_TRUE(count.ok());
      ASSERT_EQ(*count, kTuplesPerPage);
      // Appended payloads are constant per page; all tuples agree and
      // carry the appending thread's tag in the upper half.
      EXPECT_EQ(out[0].key >> 32, t);
      for (size_t i = 1; i < kTuplesPerPage; ++i) {
        EXPECT_EQ(out[i], out[0]);
      }
      ++total_appended;
    }
  }
  const auto stats = fix.pool->stats();
  EXPECT_EQ(stats.append_pages, total_appended);
  EXPECT_EQ(stats.writebacks, total_appended);
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

// With every frame consumed by a failing load, pins parked for a free
// frame must fail promptly with the latched pool error instead of
// waiting forever for a frame that will never be released.
TEST(BufferPoolErrorTest, ParkedPinsFailPromptlyOnLatchedError) {
  PageStoreOptions store_options;
  store_options.tuples_per_page = kTuplesPerPage;
  PageStore store(store_options);
  ASSERT_TRUE(store.Open().ok());
  for (uint64_t p = 0; p < 2; ++p) {
    const auto payload = PagePayload(p);
    ASSERT_TRUE(store.WritePage(payload.data(), payload.size()).ok());
  }

  io::FlakyBackend::Options flaky;
  flaky.fail_once_reads = 1;  // the first load dies, latching the pool
  io::IoSchedulerOptions io_options;
  io_options.batch_pages = 1;
  io_options.completion_queues = 2;
  auto scheduler = io::IoScheduler::CreateWithBackend(
      std::make_unique<io::FlakyBackend>(8, flaky), store.fd(),
      store.page_bytes(), store.io_delay_us(), io_options);
  ASSERT_TRUE(scheduler.ok());

  BufferPoolOptions pool_options;
  pool_options.frames = 1;  // page 0 takes the only frame; page 1 parks
  auto created =
      BufferPool::Create(&store, scheduler->get(), pool_options);
  ASSERT_TRUE(created.ok());
  BufferPool& pool = **created;

  PagePinRequest requests[2];
  for (uint64_t p = 0; p < 2; ++p) {
    requests[p].page = p;
    requests[p].user_data = p;
    requests[p].queue = 0;
  }
  ASSERT_TRUE(pool.SubmitPins(requests, 2).ok());

  size_t completed = 0;
  PagePinCompletion done[2];
  while (completed < 2) {
    ASSERT_TRUE(pool.Pump(/*block=*/true).ok());
    const size_t n = pool.DrainPins(0, done + completed, 2 - completed);
    for (size_t i = completed; i < completed + n; ++i) {
      EXPECT_FALSE(done[i].status.ok());
      EXPECT_EQ(done[i].frame, kInvalidFrame);
    }
    completed += n;
  }
  EXPECT_GE(pool.stats().deferred_pins, 1u);
  // The latched load error surfaces at Close, like a write-back error.
  EXPECT_FALSE(pool.Close().ok());
}

}  // namespace
}  // namespace mpsm

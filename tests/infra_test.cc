// Infrastructure: NUMA topology + arenas, barrier, worker team,
// counters, relations and runs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <set>
#include <thread>

#include "numa/arena.h"
#include "numa/topology.h"
#include "parallel/barrier.h"
#include "parallel/counters.h"
#include "parallel/worker_team.h"
#include "storage/relation.h"
#include "storage/run.h"

namespace mpsm {
namespace {

// ---------------------------------------------------------- topology

TEST(TopologyTest, SimulatedLayout) {
  const auto topo = numa::Topology::Simulated(4, 8);
  EXPECT_EQ(topo.num_nodes(), 4u);
  EXPECT_EQ(topo.num_cores(), 32u);
  EXPECT_TRUE(topo.simulated());
  for (uint32_t core = 0; core < 32; ++core) {
    EXPECT_EQ(topo.NodeOfCore(core), core / 8);
  }
  for (uint32_t node = 0; node < 4; ++node) {
    EXPECT_EQ(topo.CoresOfNode(node).size(), 8u);
  }
}

TEST(TopologyTest, DistanceMatrix) {
  const auto topo = numa::Topology::Simulated(3, 2, 25);
  for (uint32_t a = 0; a < 3; ++a) {
    for (uint32_t b = 0; b < 3; ++b) {
      EXPECT_EQ(topo.Distance(a, b), a == b ? 10u : 25u);
      EXPECT_EQ(topo.IsLocal(a, b), a == b);
    }
  }
}

TEST(TopologyTest, HyPer1MatchesFigure11) {
  const auto topo = numa::Topology::HyPer1();
  EXPECT_EQ(topo.num_nodes(), 4u);
  EXPECT_EQ(topo.num_cores(), 32u);
}

TEST(TopologyTest, WorkerPlacementSpreadsAcrossNodes) {
  const auto topo = numa::Topology::Simulated(4, 8);
  // The first 4 workers land on 4 distinct nodes (socket-major).
  std::set<numa::NodeId> nodes;
  for (uint32_t w = 0; w < 4; ++w) {
    nodes.insert(topo.NodeForWorker(w, 32));
  }
  EXPECT_EQ(nodes.size(), 4u);
  // 32 workers use all 32 distinct cores.
  std::set<uint32_t> cores;
  for (uint32_t w = 0; w < 32; ++w) {
    cores.insert(topo.CoreForWorker(w, 32));
  }
  EXPECT_EQ(cores.size(), 32u);
}

TEST(TopologyTest, ProbeNeverFails) {
  const auto topo = numa::Topology::Probe();
  EXPECT_GE(topo.num_nodes(), 1u);
  EXPECT_GE(topo.num_cores(), 1u);
  EXPECT_FALSE(topo.ToString().empty());
}

// ------------------------------------------------------------- arena

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  numa::Arena arena(2, /*block_bytes=*/4096);
  EXPECT_EQ(arena.node(), 2u);

  auto* a = arena.AllocateArray<Tuple>(100);
  auto* b = arena.AllocateArray<Tuple>(100);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 64, 0u);
  // Disjoint: writing one must not clobber the other.
  std::memset(a, 0xAA, 100 * sizeof(Tuple));
  std::memset(b, 0x55, 100 * sizeof(Tuple));
  EXPECT_EQ(reinterpret_cast<unsigned char*>(a)[99 * 16], 0xAA);
  EXPECT_EQ(reinterpret_cast<unsigned char*>(b)[0], 0x55);
}

TEST(ArenaTest, GrowsBeyondBlockSize) {
  numa::Arena arena(0, /*block_bytes=*/1024);
  // Allocation larger than the block must still succeed.
  auto* big = arena.AllocateArray<Tuple>(10000);
  big[9999] = Tuple{1, 2};
  EXPECT_EQ(big[9999].key, 1u);
  EXPECT_GE(arena.bytes_allocated(), 10000 * sizeof(Tuple));
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_allocated());
}

TEST(ArenaTest, ManySmallAllocations) {
  numa::Arena arena(1, 4096);
  std::vector<uint64_t*> pointers;
  for (int i = 0; i < 1000; ++i) {
    auto* p = arena.AllocateArray<uint64_t>(7);
    *p = i;
    pointers.push_back(p);
  }
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(*pointers[i], uint64_t(i));
}

TEST(NodeArenasTest, OneArenaPerNode) {
  const auto topo = numa::Topology::Simulated(4, 2);
  numa::NodeArenas arenas(topo);
  for (uint32_t node = 0; node < 4; ++node) {
    EXPECT_EQ(arenas.OfNode(node).node(), node);
  }
  EXPECT_EQ(arenas.ForWorker(1, 8).node(), topo.NodeForWorker(1, 8));
}

// ----------------------------------------------------------- barrier

TEST(BarrierTest, SingleParticipant) {
  Barrier barrier(1);
  EXPECT_TRUE(barrier.Wait());
  EXPECT_TRUE(barrier.Wait());  // reusable
}

TEST(BarrierTest, ExactlyOneSerialThreadPerRound) {
  constexpr uint32_t kThreads = 8;
  constexpr int kRounds = 50;
  Barrier barrier(kThreads);
  std::atomic<int> serial_count{0};
  std::atomic<int> phase_check{0};

  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        phase_check.fetch_add(1);
        if (barrier.Wait()) serial_count.fetch_add(1);
        // All kThreads arrivals of this round must be visible.
        EXPECT_GE(phase_check.load(), (round + 1) * int(kThreads));
        barrier.Wait();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(serial_count.load(), kRounds);
}

// ---------------------------------------------------------- counters

TEST(CountersTest, ClassifiedTraffic) {
  PerfCounters c;
  c.CountRead(true, true, 100);
  c.CountRead(false, true, 200);
  c.CountRead(true, false, 300);
  c.CountRead(false, false, 400);
  c.CountWrite(true, true, 10);
  c.CountWrite(false, false, 20);
  EXPECT_EQ(c.bytes_read_local_seq, 100u);
  EXPECT_EQ(c.bytes_read_remote_seq, 200u);
  EXPECT_EQ(c.bytes_read_local_rand, 300u);
  EXPECT_EQ(c.bytes_read_remote_rand, 400u);
  EXPECT_EQ(c.bytes_written_local_seq, 10u);
  EXPECT_EQ(c.bytes_written_remote_rand, 20u);
  EXPECT_EQ(c.TotalBytes(), 1030u);
}

TEST(CountersTest, SortWorkAccumulates) {
  PerfCounters c;
  c.CountSort(0);  // no-op
  c.CountSort(1024);
  EXPECT_EQ(c.sort_tuples, 1024u);
  EXPECT_EQ(c.sort_tuple_logs, 1024u * 10);
  c.CountSort(1);
  EXPECT_EQ(c.sort_tuples, 1025u);
}

TEST(CountersTest, AggregationAndPhaseNames) {
  WorkerStats a, b;
  a.phase_seconds[kPhaseJoin] = 1.5;
  a.phase_counters[kPhaseJoin].output_tuples = 10;
  b.phase_seconds[kPhaseJoin] = 0.5;
  b.phase_counters[kPhaseSortPublic].sort_tuples = 7;
  a += b;
  EXPECT_DOUBLE_EQ(a.phase_seconds[kPhaseJoin], 2.0);
  EXPECT_DOUBLE_EQ(a.TotalSeconds(), 2.0);
  EXPECT_EQ(a.TotalCounters().output_tuples, 10u);
  EXPECT_EQ(a.TotalCounters().sort_tuples, 7u);
  for (uint32_t p = 0; p < kNumJoinPhases; ++p) {
    EXPECT_STRNE(JoinPhaseName(static_cast<JoinPhase>(p)), "unknown");
  }
}

// -------------------------------------------------------- worker team

TEST(WorkerTeamTest, RunsAllWorkersWithCorrectContext) {
  const auto topo = numa::Topology::Simulated(4, 4);
  WorkerTeam team(topo, 8);
  std::vector<uint32_t> seen(8, 0);
  std::vector<numa::NodeId> nodes(8, 99);
  team.Run([&](WorkerContext& ctx) {
    seen[ctx.worker_id] = 1;
    nodes[ctx.worker_id] = ctx.node;
    EXPECT_EQ(ctx.team_size, 8u);
    EXPECT_EQ(ctx.arena->node(), ctx.node);
    EXPECT_EQ(ctx.topology, &team.topology());
  });
  EXPECT_EQ(std::accumulate(seen.begin(), seen.end(), 0u), 8u);
  for (uint32_t w = 0; w < 8; ++w) {
    EXPECT_EQ(nodes[w], topo.NodeForWorker(w, 8));
  }
}

TEST(WorkerTeamTest, PhaseScopeAccumulatesTime) {
  const auto topo = numa::Topology::Simulated(1, 4);
  WorkerTeam team(topo, 4);
  team.Run([&](WorkerContext& ctx) {
    {
      PhaseScope scope(ctx, kPhaseSortPublic);
      volatile uint64_t sink = 0;
      for (int i = 0; i < 100000; ++i) sink = sink + i;
    }
    ctx.Counters(kPhaseJoin).output_tuples = ctx.worker_id;
  });
  for (uint32_t w = 0; w < 4; ++w) {
    EXPECT_GT(team.stats(w).phase_seconds[kPhaseSortPublic], 0.0);
    EXPECT_EQ(team.stats(w).phase_counters[kPhaseJoin].output_tuples, w);
  }
  const auto aggregate = team.AggregateStats();
  EXPECT_EQ(aggregate.TotalCounters().output_tuples, 0u + 1 + 2 + 3);
  EXPECT_GT(team.CriticalPathSeconds(), 0.0);
}

TEST(WorkerTeamTest, StatsResetBetweenRuns) {
  const auto topo = numa::Topology::Simulated(1, 2);
  WorkerTeam team(topo, 2);
  team.Run([](WorkerContext& ctx) {
    ctx.Counters(kPhaseJoin).output_tuples = 5;
  });
  team.Run([](WorkerContext&) {});
  EXPECT_EQ(team.AggregateStats().TotalCounters().output_tuples, 0u);
}

TEST(WorkerTeamTest, BarrierSynchronizesPhases) {
  const auto topo = numa::Topology::Simulated(2, 2);
  WorkerTeam team(topo, 4);
  std::atomic<int> phase1_done{0};
  std::atomic<bool> violated{false};
  team.Run([&](WorkerContext& ctx) {
    phase1_done.fetch_add(1);
    ctx.barrier->Wait();
    if (phase1_done.load() != 4) violated = true;
  });
  EXPECT_FALSE(violated);
}

// ------------------------------------------------ relations and runs

TEST(RelationTest, ChunkSizesBalanced) {
  const auto topo = numa::Topology::Simulated(2, 2);
  const auto rel = Relation::Allocate(topo, 10, 4);
  EXPECT_EQ(rel.size(), 10u);
  EXPECT_EQ(rel.num_chunks(), 4u);
  // 10 = 3 + 3 + 2 + 2.
  EXPECT_EQ(rel.chunk(0).size, 3u);
  EXPECT_EQ(rel.chunk(1).size, 3u);
  EXPECT_EQ(rel.chunk(2).size, 2u);
  EXPECT_EQ(rel.chunk(3).size, 2u);
  size_t total = 0;
  for (uint32_t c = 0; c < 4; ++c) total += rel.chunk(c).size;
  EXPECT_EQ(total, 10u);
}

TEST(RelationTest, GlobalAtCrossesChunks) {
  const auto topo = numa::Topology::Simulated(1, 1);
  auto rel = Relation::Allocate(topo, 10, 3);
  for (uint32_t c = 0, v = 0; c < 3; ++c) {
    for (size_t i = 0; i < rel.chunk(c).size; ++i, ++v) {
      rel.chunk(c).data[i] = Tuple{v, v};
    }
  }
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(rel.At(i).key, i);
  EXPECT_EQ(rel.ToVector().size(), 10u);
}

TEST(RelationTest, FromVector) {
  auto rel = Relation::FromVector({{1, 2}, {3, 4}});
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_EQ(rel.num_chunks(), 1u);
  EXPECT_EQ(rel.At(1).key, 3u);
}

TEST(RunTest, SortedCheckAndTotals) {
  std::vector<Tuple> sorted = {{1, 0}, {2, 0}, {2, 0}};
  std::vector<Tuple> unsorted = {{2, 0}, {1, 0}};
  ::mpsm::Run a{sorted.data(), sorted.size(), 0};
  ::mpsm::Run b{unsorted.data(), unsorted.size(), 1};
  EXPECT_TRUE(IsSortedRun(a));
  EXPECT_FALSE(IsSortedRun(b));
  EXPECT_EQ(a.MinKey(), 1u);
  EXPECT_EQ(a.MaxKey(), 2u);
  EXPECT_EQ(TotalSize({a, b}), 5u);
}

}  // namespace
}  // namespace mpsm

// Randomized cross-algorithm property tests: for many seeds and
// workload shapes, all five join implementations (P-MPSM, B-MPSM,
// D-MPSM, Wisconsin, radix) must agree with each other and with the
// reference, and key invariants must hold.
#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/radix_join.h"
#include "baseline/reference_join.h"
#include "baseline/wisconsin_join.h"
#include "core/b_mpsm.h"
#include "core/consumers.h"
#include "core/p_mpsm.h"
#include "core/run_merge.h"
#include "sort/radix_introsort.h"
#include "disk/d_mpsm.h"
#include "numa/topology.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace mpsm {
namespace {

using workload::DatasetSpec;
using workload::KeyDistribution;
using workload::SKeyMode;

class SeededPropertyTest : public testing::TestWithParam<uint64_t> {};

// Derives a pseudo-random workload shape from the seed.
DatasetSpec SpecFromSeed(uint64_t seed) {
  Xoshiro256 rng(seed * 7919 + 13);
  DatasetSpec spec;
  spec.r_tuples = 500 + rng.NextBounded(8000);
  spec.multiplicity = 0.25 * (1 + rng.NextBounded(12));
  spec.key_domain = 16 + rng.NextBounded(4 * spec.r_tuples);
  spec.r_distribution = static_cast<KeyDistribution>(rng.NextBounded(3));
  spec.s_distribution = static_cast<KeyDistribution>(rng.NextBounded(3));
  spec.s_mode =
      rng.NextBounded(2) ? SKeyMode::kForeignKey : SKeyMode::kIndependent;
  spec.seed = seed;
  return spec;
}

TEST_P(SeededPropertyTest, AllAlgorithmsAgreeOnCountAndMax) {
  const uint64_t seed = GetParam();
  const auto spec = SpecFromSeed(seed);
  const auto topology = numa::Topology::Simulated(2, 8);
  const uint32_t team_size = 1 + static_cast<uint32_t>(seed % 8);
  const auto dataset = workload::Generate(topology, team_size, spec);
  WorkerTeam team(topology, team_size);

  CountFactory ref_count(1);
  const uint64_t expected_count =
      baseline::ReferenceJoin(dataset.r.ToVector(), dataset.s.ToVector(),
                              JoinKind::kInner,
                              ref_count.ConsumerForWorker(0));
  const uint64_t expected_max = baseline::ReferenceMaxPayloadSum(
      dataset.r.ToVector(), dataset.s.ToVector());

  auto check = [&](const char* name, auto&& execute) {
    CountFactory counts(team_size);
    MaxPayloadSumFactory agg(team_size);
    ASSERT_TRUE(execute(counts).ok()) << name;
    ASSERT_TRUE(execute(agg).ok()) << name;
    EXPECT_EQ(counts.Result(), expected_count)
        << name << " seed=" << seed << " t=" << team_size;
    EXPECT_EQ(agg.Result().value_or(0), expected_max)
        << name << " seed=" << seed;
  };

  check("p-mpsm", [&](ConsumerFactory& f) {
    return PMpsmJoin().Execute(team, dataset.r, dataset.s, f);
  });
  check("b-mpsm", [&](ConsumerFactory& f) {
    return BMpsmJoin().Execute(team, dataset.r, dataset.s, f);
  });
  check("d-mpsm", [&](ConsumerFactory& f) {
    disk::DMpsmOptions options;
    options.tuples_per_page = 128;
    options.pool_pages = 3;
    return disk::DMpsmJoin(options).Execute(team, dataset.r, dataset.s, f);
  });
  check("wisconsin", [&](ConsumerFactory& f) {
    return baseline::WisconsinHashJoin().Execute(team, dataset.r, dataset.s,
                                                 f);
  });
  check("radix", [&](ConsumerFactory& f) {
    return baseline::RadixHashJoin().Execute(team, dataset.r, dataset.s, f);
  });
}

TEST_P(SeededPropertyTest, SemiPlusAntiEqualsR) {
  const uint64_t seed = GetParam();
  const auto spec = SpecFromSeed(seed ^ 0xABCD);
  const auto topology = numa::Topology::Simulated(2, 4);
  const uint32_t team_size = 1 + static_cast<uint32_t>(seed % 5);
  const auto dataset = workload::Generate(topology, team_size, spec);
  WorkerTeam team(topology, team_size);

  auto count_kind = [&](JoinKind kind) {
    MpsmOptions options;
    options.kind = kind;
    CountFactory counts(team_size);
    EXPECT_TRUE(
        PMpsmJoin(options).Execute(team, dataset.r, dataset.s, counts).ok());
    return counts.Result();
  };

  const uint64_t semi = count_kind(JoinKind::kLeftSemi);
  const uint64_t anti = count_kind(JoinKind::kLeftAnti);
  const uint64_t inner = count_kind(JoinKind::kInner);
  const uint64_t outer = count_kind(JoinKind::kLeftOuter);

  // Every R tuple either has a partner (semi) or not (anti).
  EXPECT_EQ(semi + anti, dataset.r.size());
  // Outer = inner matches + unmatched R.
  EXPECT_EQ(outer, inner + anti);
  // Semi can never exceed inner.
  EXPECT_LE(semi, inner);
}

TEST_P(SeededPropertyTest, ForeignKeyCountEqualsS) {
  // In FK mode every S tuple joins exactly the R tuples sharing its
  // key; when R keys are unique the inner count is exactly |S|.
  const uint64_t seed = GetParam();
  const auto topology = numa::Topology::Simulated(2, 4);
  const uint32_t team_size = 2 + static_cast<uint32_t>(seed % 4);

  // Build an R with unique keys directly.
  Xoshiro256 rng(seed);
  const size_t n = 2000 + rng.NextBounded(3000);
  Relation r = Relation::Allocate(topology, n, team_size);
  uint64_t key = 0;
  for (uint32_t c = 0; c < r.num_chunks(); ++c) {
    for (size_t i = 0; i < r.chunk(c).size; ++i) {
      key += 1 + rng.NextBounded(5);
      r.chunk(c).data[i] = Tuple{key, rng.Next() & 0xFFFF};
    }
  }
  // S: FK draws from R's keys.
  const size_t s_size = 3 * n;
  Relation s = Relation::Allocate(topology, s_size, team_size);
  std::vector<uint64_t> keys;
  for (uint32_t c = 0; c < r.num_chunks(); ++c) {
    for (size_t i = 0; i < r.chunk(c).size; ++i) {
      keys.push_back(r.chunk(c).data[i].key);
    }
  }
  for (uint32_t c = 0; c < s.num_chunks(); ++c) {
    for (size_t i = 0; i < s.chunk(c).size; ++i) {
      s.chunk(c).data[i] =
          Tuple{keys[rng.NextBounded(keys.size())], rng.Next() & 0xFFFF};
    }
  }

  WorkerTeam team(topology, team_size);
  CountFactory counts(team_size);
  ASSERT_TRUE(PMpsmJoin().Execute(team, r, s, counts).ok());
  EXPECT_EQ(counts.Result(), s_size);
}

TEST_P(SeededPropertyTest, DeterministicAcrossRepeats) {
  const uint64_t seed = GetParam();
  const auto spec = SpecFromSeed(seed ^ 0x1111);
  const auto topology = numa::Topology::Simulated(4, 4);
  const auto dataset = workload::Generate(topology, 4, spec);
  WorkerTeam team(topology, 4);

  uint64_t first = 0;
  for (int repeat = 0; repeat < 3; ++repeat) {
    MaxPayloadSumFactory agg(4);
    ASSERT_TRUE(PMpsmJoin().Execute(team, dataset.r, dataset.s, agg).ok());
    if (repeat == 0) {
      first = agg.Result().value_or(0);
    } else {
      EXPECT_EQ(agg.Result().value_or(0), first);
    }
  }
}

TEST_P(SeededPropertyTest, MergedWorkerOutputIsSorted) {
  // Property from §6: merging each worker's (at most T) output runs
  // with the loser tree yields that worker's partition fully sorted,
  // and partitions concatenate into a global sort order. The at-most-T
  // segment shape is a property of the paper's *static* script (one
  // merge pass per public run); the stealing scheduler range-slices
  // the merges, so pin kStatic here.
  const uint64_t seed = GetParam();
  const auto spec = SpecFromSeed(seed ^ 0x2222);
  const auto topology = numa::Topology::Simulated(2, 4);
  const uint32_t team_size = 4;
  const auto dataset = workload::Generate(topology, team_size, spec);
  WorkerTeam team(topology, team_size);

  MpsmOptions static_options;
  static_options.scheduler = SchedulerKind::kStatic;
  MaterializeFactory rows(team_size);
  ASSERT_TRUE(
      PMpsmJoin(static_options).Execute(team, dataset.r, dataset.s, rows).ok());

  uint64_t previous_partition_max = 0;
  bool any = false;
  for (uint32_t w = 0; w < team_size; ++w) {
    const auto& out = rows.RowsOfWorker(w);
    if (out.empty()) continue;
    // Split the worker's emission order into ascending segments, then
    // merge them; result must be sorted.
    std::vector<std::vector<Tuple>> segments(1);
    for (size_t i = 0; i < out.size(); ++i) {
      if (i > 0 && out[i].key < out[i - 1].key) segments.emplace_back();
      segments.back().push_back(
          Tuple{out[i].key, out[i].s_payload.value_or(0)});
    }
    EXPECT_LE(segments.size(), team_size) << "worker " << w;
    std::vector<::mpsm::Run> runs;
    for (auto& segment : segments) {
      runs.push_back(::mpsm::Run{segment.data(), segment.size(), 0});
    }
    const auto merged = MergeRuns(runs);
    EXPECT_TRUE(sort::IsSortedByKey(merged.data(), merged.size()));
    // Range-partitioned: this partition starts at or after the
    // previous partition's end.
    if (any) {
      EXPECT_GE(merged.front().key, previous_partition_max);
    }
    previous_partition_max = merged.back().key;
    any = true;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededPropertyTest,
                         testing::Range<uint64_t>(0, 12),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace mpsm

// Crash-safe restartable joins (docs/recovery.md): journal framing and
// replay repair, the recovery manager's validation ladder, end-to-end
// D-MPSM resume equality across randomized crash points, and the
// engine/service resume surfaces.
#include <gtest/gtest.h>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "baseline/reference_join.h"
#include "core/consumers.h"
#include "disk/d_mpsm.h"
#include "engine/engine.h"
#include "numa/topology.h"
#include "recovery/join_journal.h"
#include "recovery/recovery_manager.h"
#include "service/join_service.h"
#include "workload/generator.h"

namespace mpsm {
namespace {

using disk::DMpsmJoin;
using disk::DMpsmOptions;
using disk::DMpsmReport;
using disk::PageIndexEntry;
using recovery::ChunkRecord;
using recovery::FingerprintFor;
using recovery::JoinJournal;
using recovery::QueryFingerprint;
using recovery::RecoveryManager;
using recovery::RecoveryManagerOptions;
using recovery::ResumeState;
using recovery::RunRecord;

constexpr size_t kTuplesPerPage = 64;
constexpr uint32_t kTeam = 4;

/// Unique scratch directory per test: manifests are named by query
/// fingerprint, and parallel test processes would otherwise collide on
/// a shared /tmp.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/mpsm_recovery_XXXXXX";
    char* made = ::mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path = made != nullptr ? made : "/tmp";
  }
  ~TempDir() {
    DIR* dir = ::opendir(path.c_str());
    if (dir != nullptr) {
      while (const dirent* entry = ::readdir(dir)) {
        if (std::strcmp(entry->d_name, ".") == 0 ||
            std::strcmp(entry->d_name, "..") == 0) {
          continue;
        }
        ::unlink((path + "/" + entry->d_name).c_str());
      }
      ::closedir(dir);
    }
    ::rmdir(path.c_str());
  }
};

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

std::vector<char> ReadFileBytes(const std::string& path) {
  std::vector<char> bytes;
  const int fd = ::open(path.c_str(), O_RDONLY);
  EXPECT_GE(fd, 0) << path;
  if (fd < 0) return bytes;
  struct stat st{};
  EXPECT_EQ(::fstat(fd, &st), 0);
  bytes.resize(static_cast<size_t>(st.st_size));
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::read(fd, bytes.data() + done, bytes.size() - done);
    EXPECT_GT(n, 0);
    if (n <= 0) break;
    done += static_cast<size_t>(n);
  }
  ::close(fd);
  return bytes;
}

void WriteFileBytes(const std::string& path, const char* data, size_t len) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0) << path;
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, data + done, len - done);
    ASSERT_GT(n, 0);
    done += static_cast<size_t>(n);
  }
  ::close(fd);
}

QueryFingerprint TestFingerprint() {
  QueryFingerprint fp;
  fp.r_id = 11;
  fp.r_version = 1;
  fp.r_tuples = 1000;
  fp.s_id = 12;
  fp.s_version = 2;
  fp.s_tuples = 2000;
  fp.join_kind = 0;
  fp.team_size = kTeam;
  fp.tuples_per_page = kTuplesPerPage;
  return fp;
}

// ------------------------------------------------------------- journal

TEST(JoinJournalTest, RoundTripsHeaderRunsAndChunks) {
  TempDir dir;
  const std::string path = dir.path + "/m.jnl";
  const QueryFingerprint fp = TestFingerprint();
  auto journal = JoinJournal::Create(path, fp);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();

  RunRecord run;
  run.run_id = 2;
  run.is_private = true;
  run.content_checksum = 0xabcdef;
  run.pages.push_back(PageIndexEntry{10, 2, 0, 64});
  run.pages.push_back(PageIndexEntry{20, 2, 1, 32});
  ASSERT_TRUE((*journal)->CommitRun(run).ok());

  ChunkRecord chunk;
  chunk.worker = 1;
  chunk.state = std::string("a\0b", 3);  // embedded NUL must survive
  ASSERT_TRUE((*journal)->CommitChunk(chunk).ok());
  EXPECT_EQ((*journal)->commits(), 2u);
  journal->reset();  // close before replay

  auto replay = JoinJournal::ReplayFile(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_FALSE(replay->tail_truncated);
  EXPECT_EQ(replay->fingerprint, fp);
  ASSERT_EQ(replay->runs.size(), 1u);
  EXPECT_EQ(replay->runs[0].run_id, 2u);
  EXPECT_TRUE(replay->runs[0].is_private);
  EXPECT_EQ(replay->runs[0].content_checksum, 0xabcdefu);
  ASSERT_EQ(replay->runs[0].pages.size(), 2u);
  EXPECT_EQ(replay->runs[0].pages[0].min_key, 10u);
  EXPECT_EQ(replay->runs[0].pages[1].page, 1u);
  EXPECT_EQ(replay->runs[0].pages[1].tuple_count, 32u);
  ASSERT_EQ(replay->chunks.size(), 1u);
  EXPECT_EQ(replay->chunks[0].worker, 1u);
  EXPECT_EQ(replay->chunks[0].state, std::string("a\0b", 3));
}

TEST(JoinJournalTest, TornTailIsTruncatedInPlace) {
  TempDir dir;
  const std::string path = dir.path + "/m.jnl";
  const QueryFingerprint fp = TestFingerprint();
  auto journal = JoinJournal::Create(path, fp);
  ASSERT_TRUE(journal.ok());
  RunRecord run;
  run.run_id = 0;
  run.pages.push_back(PageIndexEntry{5, 0, 0, 64});
  ASSERT_TRUE((*journal)->CommitRun(run).ok());
  journal->reset();

  struct stat st{};
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  const uint64_t valid_size = static_cast<uint64_t>(st.st_size);

  // A crash mid-append leaves a torn frame at the tail.
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::write(fd, "torn-frame-bytes", 16), 16);
  ::close(fd);

  auto replay = JoinJournal::ReplayFile(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->tail_truncated);
  EXPECT_EQ(replay->valid_bytes, valid_size);
  ASSERT_EQ(replay->runs.size(), 1u);

  // The repair is durable: the file shrank back and replays clean.
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  EXPECT_EQ(static_cast<uint64_t>(st.st_size), valid_size);
  auto again = JoinJournal::ReplayFile(path);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->tail_truncated);
}

TEST(JoinJournalTest, CorruptedTailRecordIsDropped) {
  TempDir dir;
  const std::string path = dir.path + "/m.jnl";
  auto journal = JoinJournal::Create(path, TestFingerprint());
  ASSERT_TRUE(journal.ok());
  for (uint32_t w = 0; w < 3; ++w) {
    RunRecord run;
    run.run_id = w;
    run.pages.push_back(PageIndexEntry{w, w, w, 64});
    ASSERT_TRUE((*journal)->CommitRun(run).ok());
  }
  journal->reset();

  // Flip a byte inside the last record's checksum footer.
  std::vector<char> bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 4u);
  bytes[bytes.size() - 3] ^= 0x40;
  WriteFileBytes(path, bytes.data(), bytes.size());

  auto replay = JoinJournal::ReplayFile(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->tail_truncated);
  EXPECT_EQ(replay->runs.size(), 2u);  // the corrupt third is gone
}

TEST(JoinJournalTest, MissingManifestIsNotFound) {
  TempDir dir;
  const auto replay = JoinJournal::ReplayFile(dir.path + "/absent.jnl");
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kNotFound);
}

TEST(JoinJournalTest, HeaderlessGarbageIsInvalidArgument) {
  TempDir dir;
  const std::string path = dir.path + "/m.jnl";
  const char garbage[] = "definitely not a join manifest, long enough";
  WriteFileBytes(path, garbage, sizeof(garbage));
  const auto replay = JoinJournal::ReplayFile(path);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------- manager

TEST(RecoveryManagerTest, LoadWithoutManifestIsCold) {
  TempDir dir;
  RecoveryManager manager({dir.path, false, kTuplesPerPage});
  auto state = manager.Load(TestFingerprint());
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_FALSE(state->HasWork());
  EXPECT_EQ(state->adopted_pages, 0u);
}

TEST(RecoveryManagerTest, ForeignHeaderFallsBackColdAndRetires) {
  TempDir dir;
  RecoveryManager manager({dir.path, false, kTuplesPerPage});
  const QueryFingerprint fp = TestFingerprint();
  QueryFingerprint stale = fp;
  stale.s_version += 1;

  // A manifest at fp's path carrying a different header (the hash
  // collision / renamed-file defense): cold run, artifact removed.
  auto journal = JoinJournal::Create(manager.JournalPath(fp), stale);
  ASSERT_TRUE(journal.ok());
  journal->reset();

  auto state = manager.Load(fp);
  ASSERT_TRUE(state.ok());
  EXPECT_FALSE(state->HasWork());
  EXPECT_FALSE(FileExists(manager.JournalPath(fp)));
}

TEST(RecoveryManagerTest, ImplausibleRunsAreDroppedPlausibleKept) {
  TempDir dir;
  RecoveryManager manager({dir.path, false, kTuplesPerPage});
  const QueryFingerprint fp = TestFingerprint();
  auto journal = JoinJournal::Create(manager.JournalPath(fp), fp);
  ASSERT_TRUE(journal.ok());

  RunRecord bad_worker;  // worker id out of range
  bad_worker.run_id = kTeam + 3;
  bad_worker.pages.push_back(PageIndexEntry{1, kTeam + 3, 0, 64});
  ASSERT_TRUE((*journal)->CommitRun(bad_worker).ok());

  RunRecord bad_count;  // per-page count over the geometry
  bad_count.run_id = 1;
  bad_count.pages.push_back(
      PageIndexEntry{1, 1, 0, static_cast<uint32_t>(kTuplesPerPage + 1)});
  ASSERT_TRUE((*journal)->CommitRun(bad_count).ok());

  RunRecord bad_order;  // min keys must be non-decreasing
  bad_order.run_id = 2;
  bad_order.pages.push_back(PageIndexEntry{9, 2, 0, 64});
  bad_order.pages.push_back(PageIndexEntry{3, 2, 1, 64});
  ASSERT_TRUE((*journal)->CommitRun(bad_order).ok());

  RunRecord good;
  good.run_id = 3;
  good.pages.push_back(PageIndexEntry{1, 3, 0, 64});
  good.pages.push_back(PageIndexEntry{7, 3, 1, 64});
  ASSERT_TRUE((*journal)->CommitRun(good).ok());
  journal->reset();

  // Spool sized to cover the adopted pages (content unchecked here).
  const size_t page_bytes = kTuplesPerPage * sizeof(Tuple) + sizeof(uint64_t);
  std::vector<char> spool(2 * page_bytes, 0);
  WriteFileBytes(manager.SpoolPath(fp), spool.data(), spool.size());

  auto state = manager.Load(fp);
  ASSERT_TRUE(state.ok());
  ASSERT_EQ(state->public_runs.size(), kTeam);
  EXPECT_FALSE(state->public_runs[1].has_value());
  EXPECT_FALSE(state->public_runs[2].has_value());
  ASSERT_TRUE(state->public_runs[3].has_value());
  EXPECT_EQ(state->public_runs[3]->pages.size(), 2u);
  EXPECT_EQ(state->adopted_pages, 2u);
}

TEST(RecoveryManagerTest, ShortSpoolFallsBackCold) {
  TempDir dir;
  RecoveryManager manager({dir.path, false, kTuplesPerPage});
  const QueryFingerprint fp = TestFingerprint();
  auto journal = JoinJournal::Create(manager.JournalPath(fp), fp);
  ASSERT_TRUE(journal.ok());
  RunRecord run;
  run.run_id = 0;
  run.pages.push_back(PageIndexEntry{1, 0, 0, 64});
  run.pages.push_back(PageIndexEntry{5, 0, 3, 64});  // needs 4 pages
  ASSERT_TRUE((*journal)->CommitRun(run).ok());
  journal->reset();
  WriteFileBytes(manager.SpoolPath(fp), "short", 5);

  auto state = manager.Load(fp);
  ASSERT_TRUE(state.ok());
  EXPECT_FALSE(state->HasWork());
  EXPECT_FALSE(FileExists(manager.JournalPath(fp)));
  EXPECT_FALSE(FileExists(manager.SpoolPath(fp)));
}

// --------------------------------------------------- d-mpsm end to end

DMpsmOptions JournaledOptions(const RecoveryManager& manager,
                              const QueryFingerprint& fp,
                              const std::string& dir) {
  DMpsmOptions options;
  options.tuples_per_page = kTuplesPerPage;
  options.pool_pages = 4;
  options.directory = dir;
  options.recovery.journal = true;
  options.recovery.journal_path = manager.JournalPath(fp);
  options.recovery.spool_path = manager.SpoolPath(fp);
  options.recovery.retain_artifacts = true;
  options.recovery.checksum_runs = true;
  return options;
}

TEST(DMpsmRecoveryTest, JournaledColdRunMatchesReferenceAndRetires) {
  TempDir dir;
  const auto topology = numa::Topology::Simulated(2, 8);
  workload::DatasetSpec spec;
  spec.r_tuples = 4000;
  spec.multiplicity = 2.0;
  spec.key_domain = 12000;
  spec.seed = 77;
  const auto dataset = workload::Generate(topology, kTeam, spec);
  WorkerTeam team(topology, kTeam);

  CountFactory reference(1);
  const uint64_t expected = baseline::ReferenceJoin(
      dataset.r.ToVector(), dataset.s.ToVector(), JoinKind::kInner,
      reference.ConsumerForWorker(0));

  RecoveryManager manager({dir.path, false, kTuplesPerPage});
  const QueryFingerprint fp =
      FingerprintFor(dataset.r, dataset.s, kTeam, kTuplesPerPage);
  DMpsmOptions options = JournaledOptions(manager, fp, dir.path);
  options.recovery.retain_artifacts = false;

  CountFactory counts(kTeam);
  DMpsmReport report;
  auto info = DMpsmJoin(options).Execute(team, dataset.r, dataset.s, counts,
                                         &report);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(counts.Result(), expected);
  EXPECT_FALSE(report.resumed);
  // One record per public run, private run, and completed chunk.
  EXPECT_EQ(report.journal_commits, 3u * kTeam);
  // Success retires both artifacts.
  EXPECT_FALSE(FileExists(manager.JournalPath(fp)));
  EXPECT_FALSE(FileExists(manager.SpoolPath(fp)));
}

TEST(DMpsmRecoveryTest, ResumeFromCompleteManifestSkipsEverything) {
  TempDir dir;
  const auto topology = numa::Topology::Simulated(2, 8);
  workload::DatasetSpec spec;
  spec.r_tuples = 4000;
  spec.multiplicity = 2.0;
  spec.key_domain = 12000;
  spec.seed = 78;
  const auto dataset = workload::Generate(topology, kTeam, spec);
  WorkerTeam team(topology, kTeam);

  RecoveryManager manager({dir.path, false, kTuplesPerPage});
  const QueryFingerprint fp =
      FingerprintFor(dataset.r, dataset.s, kTeam, kTuplesPerPage);
  DMpsmOptions options = JournaledOptions(manager, fp, dir.path);

  CountFactory first(kTeam);
  ASSERT_TRUE(
      DMpsmJoin(options).Execute(team, dataset.r, dataset.s, first).ok());

  auto state = manager.Load(fp);
  ASSERT_TRUE(state.ok());
  ASSERT_TRUE(state->HasWork());
  EXPECT_GT(state->adopted_pages, 0u);

  options.recovery.resume = &*state;
  CountFactory second(kTeam);
  DMpsmReport report;
  auto info = DMpsmJoin(options).Execute(team, dataset.r, dataset.s, second,
                                         &report);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(second.Result(), first.Result());
  EXPECT_TRUE(report.resumed);
  EXPECT_EQ(report.runs_reattached, 2u * kTeam);
  EXPECT_EQ(report.chunks_skipped, kTeam);
  // Everything was durable already: nothing new to commit.
  EXPECT_EQ(report.journal_commits, 0u);
}

std::vector<OutputRow> SortedRows(std::vector<OutputRow> rows) {
  std::sort(rows.begin(), rows.end(),
            [](const OutputRow& a, const OutputRow& b) {
              if (a.key != b.key) return a.key < b.key;
              if (a.r_payload != b.r_payload) return a.r_payload < b.r_payload;
              return a.s_payload.value_or(0) < b.s_payload.value_or(0);
            });
  return rows;
}

TEST(DMpsmRecoveryTest, RandomizedCrashPointsResumeToExactOutput) {
  // Commit discipline makes any record-prefix of the journal a valid
  // crash state (join_journal.h), so truncating/corrupting a completed
  // run's artifacts simulates arbitrary crash points. Every variant
  // must resume (or fall back cold) to the exact reference output.
  TempDir dir;
  const auto topology = numa::Topology::Simulated(2, 8);
  workload::DatasetSpec spec;
  spec.r_tuples = 3000;
  spec.multiplicity = 2.0;
  spec.key_domain = 9000;
  spec.seed = 79;
  const auto dataset = workload::Generate(topology, kTeam, spec);
  WorkerTeam team(topology, kTeam);

  MaterializeFactory reference(1);
  baseline::ReferenceJoin(dataset.r.ToVector(), dataset.s.ToVector(),
                          JoinKind::kInner,
                          reference.ConsumerForWorker(0));
  const std::vector<OutputRow> expected = SortedRows(reference.AllRows());

  // verify_runs on: resumed trials must also survive the paranoid
  // content-checksum pass.
  RecoveryManager manager({dir.path, true, kTuplesPerPage});
  const QueryFingerprint fp =
      FingerprintFor(dataset.r, dataset.s, kTeam, kTuplesPerPage);
  const DMpsmOptions base = JournaledOptions(manager, fp, dir.path);

  MaterializeFactory full(kTeam);
  ASSERT_TRUE(
      DMpsmJoin(base).Execute(team, dataset.r, dataset.s, full).ok());
  ASSERT_EQ(SortedRows(full.AllRows()), expected);

  const std::vector<char> journal_bytes =
      ReadFileBytes(manager.JournalPath(fp));
  const std::vector<char> spool_bytes = ReadFileBytes(manager.SpoolPath(fp));
  ASSERT_GT(journal_bytes.size(), 0u);
  ASSERT_GT(spool_bytes.size(), 0u);

  std::mt19937 rng(1234);
  for (int trial = 0; trial < 12; ++trial) {
    // Restore the crashed incarnation's artifacts, then damage them.
    WriteFileBytes(manager.SpoolPath(fp), spool_bytes.data(),
                   spool_bytes.size());
    std::vector<char> journal = journal_bytes;
    const int mode = trial % 3;
    if (mode == 0) {  // crash at an arbitrary byte: truncated tail
      journal.resize(rng() % (journal.size() + 1));
    } else if (mode == 1) {  // bit rot / torn frame mid-file
      if (!journal.empty()) journal[rng() % journal.size()] ^= 0x20;
    }  // mode 2: intact manifest (clean kill after the last commit)
    WriteFileBytes(manager.JournalPath(fp), journal.data(), journal.size());

    auto state = manager.Load(fp);
    ASSERT_TRUE(state.ok()) << "trial " << trial << ": "
                            << state.status().ToString();

    DMpsmOptions options = base;
    options.recovery.resume = &*state;
    MaterializeFactory out(kTeam);
    DMpsmReport report;
    auto info = DMpsmJoin(options).Execute(team, dataset.r, dataset.s, out,
                                           &report);
    ASSERT_TRUE(info.ok())
        << "trial " << trial << ": " << info.status().ToString();
    EXPECT_EQ(SortedRows(out.AllRows()), expected) << "trial " << trial;
    if (state->HasWork()) {
      EXPECT_TRUE(report.resumed) << "trial " << trial;
    }
  }
}

TEST(DMpsmRecoveryTest, BumpedRelationVersionRunsColdAndCorrect) {
  TempDir dir;
  const auto topology = numa::Topology::Simulated(2, 8);
  workload::DatasetSpec spec;
  spec.r_tuples = 3000;
  spec.multiplicity = 2.0;
  spec.key_domain = 9000;
  spec.seed = 80;
  auto dataset = workload::Generate(topology, kTeam, spec);
  WorkerTeam team(topology, kTeam);

  RecoveryManager manager({dir.path, false, kTuplesPerPage});
  const QueryFingerprint fp =
      FingerprintFor(dataset.r, dataset.s, kTeam, kTuplesPerPage);
  const DMpsmOptions options = JournaledOptions(manager, fp, dir.path);
  CountFactory first(kTeam);
  ASSERT_TRUE(
      DMpsmJoin(options).Execute(team, dataset.r, dataset.s, first).ok());

  // The input changed: the durable state keys to a different
  // fingerprint, so the restarted query finds nothing and runs cold.
  dataset.s.BumpVersion();
  const QueryFingerprint bumped =
      FingerprintFor(dataset.r, dataset.s, kTeam, kTuplesPerPage);
  EXPECT_NE(bumped.Hash(), fp.Hash());
  auto state = manager.Load(bumped);
  ASSERT_TRUE(state.ok());
  EXPECT_FALSE(state->HasWork());

  DMpsmOptions cold = JournaledOptions(manager, bumped, dir.path);
  cold.recovery.resume = &*state;
  CountFactory second(kTeam);
  DMpsmReport report;
  ASSERT_TRUE(DMpsmJoin(cold)
                  .Execute(team, dataset.r, dataset.s, second, &report)
                  .ok());
  EXPECT_EQ(second.Result(), first.Result());
  EXPECT_FALSE(report.resumed);
  EXPECT_EQ(report.chunks_skipped, 0u);
}

// ------------------------------------------------------ engine surface

TEST(EngineRecoveryTest, ExecuteThenResumeSkipsCompletedWork) {
  TempDir dir;
  const auto topology = numa::Topology::Simulated(2, 8);
  workload::DatasetSpec spec;
  spec.r_tuples = 4000;
  spec.multiplicity = 2.0;
  spec.key_domain = 12000;
  spec.seed = 81;
  const auto dataset = workload::Generate(topology, kTeam, spec);

  engine::EngineOptions options;
  options.workers = kTeam;
  options.force_algorithm = engine::Algorithm::kDMpsm;
  options.dmpsm.tuples_per_page = kTuplesPerPage;
  options.dmpsm.pool_pages = 4;
  options.dmpsm.directory = dir.path;
  options.recovery.enabled = true;
  options.recovery.dir = dir.path;
  options.recovery.retain_artifacts = true;
  engine::Engine engine(topology, options);

  CountFactory first(kTeam);
  engine::JoinSpec spec_first;
  spec_first.r = &dataset.r;
  spec_first.s = &dataset.s;
  spec_first.consumers = &first;
  auto report = engine.Execute(spec_first);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->dmpsm.has_value());
  EXPECT_FALSE(report->dmpsm->resumed);
  EXPECT_EQ(report->dmpsm->journal_commits, 3u * kTeam);

  // The retained manifest stands in for a crashed first incarnation.
  CountFactory second(kTeam);
  engine::JoinSpec spec_second = spec_first;
  spec_second.consumers = &second;
  auto resumed = engine.Resume(spec_second);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_TRUE(resumed->dmpsm.has_value());
  EXPECT_TRUE(resumed->dmpsm->resumed);
  EXPECT_EQ(resumed->dmpsm->chunks_skipped, kTeam);
  EXPECT_EQ(second.Result(), first.Result());

  // The recovery counters ride the JSON report.
  const std::string json = resumed->ToJson();
  EXPECT_NE(json.find("\"resumed\":true"), std::string::npos);
  EXPECT_NE(json.find("\"chunks_skipped\":4"), std::string::npos);
}

// ----------------------------------------------------- service surface

TEST(ServiceRecoveryTest, ResubmissionResumesAndCountsIt) {
  TempDir dir;
  const auto topology = numa::Topology::Simulated(2, 8);
  workload::DatasetSpec spec;
  spec.r_tuples = 4000;
  spec.multiplicity = 2.0;
  spec.key_domain = 12000;
  spec.seed = 82;
  const auto dataset = workload::Generate(topology, kTeam, spec);

  service::ServiceOptions options;
  options.lanes = 1;
  options.engine.workers = kTeam;
  options.engine.dmpsm.tuples_per_page = kTuplesPerPage;
  options.engine.dmpsm.pool_pages = 4;
  options.engine.dmpsm.directory = dir.path;
  options.engine.recovery.enabled = true;
  options.engine.recovery.dir = dir.path;
  options.engine.recovery.retain_artifacts = true;
  service::JoinService service(topology, options);

  engine::JoinSpec join;
  join.r = &dataset.r;
  join.s = &dataset.s;
  join.algorithm = engine::Algorithm::kDMpsm;

  CountFactory first(kTeam);
  join.consumers = &first;
  auto id = service.Submit(join);
  ASSERT_TRUE(id.ok());
  auto report = service.Wait(*id);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(service.stats().resumed_queries, 0u);

  // Resubmitting the identical query models the post-crash retry: the
  // retained manifest is picked up and the walks are skipped.
  CountFactory second(kTeam);
  join.consumers = &second;
  id = service.Submit(join);
  ASSERT_TRUE(id.ok());
  auto retried = service.Wait(*id);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  ASSERT_TRUE(retried->dmpsm.has_value());
  EXPECT_TRUE(retried->dmpsm->resumed);
  EXPECT_EQ(second.Result(), first.Result());
  EXPECT_EQ(service.stats().resumed_queries, 1u);
}

}  // namespace
}  // namespace mpsm

// End-to-end correctness: every parallel join algorithm must produce
// exactly the reference answer on randomized inputs across team sizes,
// multiplicities, distributions, and join kinds.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "baseline/radix_join.h"
#include "baseline/reference_join.h"
#include "baseline/wisconsin_join.h"
#include "core/b_mpsm.h"
#include "core/consumers.h"
#include "core/p_mpsm.h"
#include "disk/d_mpsm.h"
#include "engine/engine.h"
#include "numa/topology.h"
#include "workload/generator.h"
#include "workload/query.h"

namespace mpsm {
namespace {

using workload::Algorithm;
using workload::Arrangement;
using workload::DatasetSpec;
using workload::KeyDistribution;
using workload::SKeyMode;

numa::Topology TestTopology() { return numa::Topology::Simulated(4, 16); }

struct JoinCase {
  Algorithm algorithm;
  uint32_t team_size;
  size_t r_tuples;
  double multiplicity;
  KeyDistribution r_dist;
  SKeyMode s_mode;
};

std::string CaseName(const testing::TestParamInfo<JoinCase>& info) {
  const JoinCase& c = info.param;
  std::string name = workload::AlgorithmName(c.algorithm);
  std::replace(name.begin(), name.end(), '-', '_');
  std::replace(name.begin(), name.end(), ' ', '_');
  std::replace(name.begin(), name.end(), '(', '_');
  std::replace(name.begin(), name.end(), ')', '_');
  name += "_t" + std::to_string(c.team_size);
  name += "_r" + std::to_string(c.r_tuples);
  name += "_m" + std::to_string(static_cast<int>(c.multiplicity * 10));
  switch (c.r_dist) {
    case KeyDistribution::kUniform:
      name += "_uni";
      break;
    case KeyDistribution::kSkewLowEnd:
      name += "_skewlo";
      break;
    case KeyDistribution::kSkewHighEnd:
      name += "_skewhi";
      break;
  }
  name += c.s_mode == SKeyMode::kForeignKey ? "_fk" : "_ind";
  return name;
}

class JoinCorrectnessTest : public testing::TestWithParam<JoinCase> {};

TEST_P(JoinCorrectnessTest, CountMatchesReference) {
  const JoinCase& c = GetParam();
  const auto topology = TestTopology();

  DatasetSpec spec;
  spec.r_tuples = c.r_tuples;
  spec.multiplicity = c.multiplicity;
  spec.key_domain = c.r_tuples * 4 + 16;  // force duplicates
  spec.r_distribution = c.r_dist;
  spec.s_mode = c.s_mode;
  spec.seed = 1234 + c.team_size;
  const auto dataset = workload::Generate(topology, c.team_size, spec);

  WorkerTeam team(topology, c.team_size);
  CountFactory counts(c.team_size);

  Result<JoinRunInfo> info = Status::Internal("unset");
  switch (c.algorithm) {
    case Algorithm::kPMpsm:
      info = PMpsmJoin().Execute(team, dataset.r, dataset.s, counts);
      break;
    case Algorithm::kBMpsm:
      info = BMpsmJoin().Execute(team, dataset.r, dataset.s, counts);
      break;
    case Algorithm::kDMpsm:
      info = disk::DMpsmJoin().Execute(team, dataset.r, dataset.s, counts);
      break;
    case Algorithm::kWisconsin:
      info = baseline::WisconsinHashJoin().Execute(team, dataset.r,
                                                   dataset.s, counts);
      break;
    case Algorithm::kRadix:
      info = baseline::RadixHashJoin().Execute(team, dataset.r, dataset.s,
                                               counts);
      break;
  }
  ASSERT_TRUE(info.ok()) << info.status().ToString();

  CountFactory reference(1);
  const uint64_t expected =
      baseline::ReferenceJoin(dataset.r.ToVector(), dataset.s.ToVector(),
                              JoinKind::kInner,
                              reference.ConsumerForWorker(0));
  EXPECT_EQ(counts.Result(), expected);
  EXPECT_EQ(info->output_tuples, expected);
}

TEST_P(JoinCorrectnessTest, MaxSumMatchesReference) {
  const JoinCase& c = GetParam();
  const auto topology = TestTopology();

  DatasetSpec spec;
  spec.r_tuples = c.r_tuples;
  spec.multiplicity = c.multiplicity;
  spec.key_domain = c.r_tuples * 4 + 16;
  spec.r_distribution = c.r_dist;
  spec.s_mode = c.s_mode;
  spec.seed = 99 + c.team_size;
  const auto dataset = workload::Generate(topology, c.team_size, spec);

  engine::EngineOptions engine_options;
  engine_options.workers = c.team_size;
  engine::Engine engine(topology, engine_options);
  auto result = workload::RunBenchmarkQuery(c.algorithm, engine, dataset.r,
                                            dataset.s);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->plan().algorithm, c.algorithm);

  const uint64_t expected = baseline::ReferenceMaxPayloadSum(
      dataset.r.ToVector(), dataset.s.ToVector());
  EXPECT_EQ(result->max_sum.value_or(0), expected);
}

std::vector<JoinCase> AllCases() {
  std::vector<JoinCase> cases;
  const Algorithm algorithms[] = {Algorithm::kPMpsm, Algorithm::kBMpsm,
                                  Algorithm::kDMpsm, Algorithm::kWisconsin,
                                  Algorithm::kRadix};
  for (Algorithm a : algorithms) {
    for (uint32_t t : {1u, 2u, 4u, 7u}) {
      cases.push_back(JoinCase{a, t, 10000, 2.0,
                               KeyDistribution::kUniform,
                               SKeyMode::kForeignKey});
    }
    // Multiplicity sweep at fixed team size.
    for (double m : {0.5, 1.0, 8.0}) {
      cases.push_back(JoinCase{a, 4, 5000, m, KeyDistribution::kUniform,
                               SKeyMode::kForeignKey});
    }
    // Skewed private input, independent S.
    cases.push_back(JoinCase{a, 4, 20000, 1.0, KeyDistribution::kSkewLowEnd,
                             SKeyMode::kIndependent});
    cases.push_back(JoinCase{a, 4, 20000, 1.0, KeyDistribution::kSkewHighEnd,
                             SKeyMode::kIndependent});
    // Tiny inputs.
    cases.push_back(JoinCase{a, 4, 64, 1.0, KeyDistribution::kUniform,
                             SKeyMode::kForeignKey});
    cases.push_back(JoinCase{a, 3, 1, 1.0, KeyDistribution::kUniform,
                             SKeyMode::kForeignKey});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, JoinCorrectnessTest,
                         testing::ValuesIn(AllCases()), CaseName);

// ------------------------------------------------- join kind variants

class JoinKindTest
    : public testing::TestWithParam<std::tuple<JoinKind, uint32_t, bool>> {};

TEST_P(JoinKindTest, PMpsmMatchesReference) {
  const auto [kind, team_size, use_b_mpsm] = GetParam();
  const auto topology = TestTopology();

  DatasetSpec spec;
  spec.r_tuples = 8000;
  spec.multiplicity = 1.5;
  spec.key_domain = 20000;  // some R tuples unmatched, duplicates exist
  spec.s_mode = SKeyMode::kIndependent;
  spec.seed = 777;
  const auto dataset = workload::Generate(topology, team_size, spec);

  WorkerTeam team(topology, team_size);
  MpsmOptions options;
  options.kind = kind;
  CountFactory counts(team_size);
  Result<JoinRunInfo> info = Status::Internal("unset");
  if (use_b_mpsm) {
    info = BMpsmJoin(options).Execute(team, dataset.r, dataset.s, counts);
  } else {
    info = PMpsmJoin(options).Execute(team, dataset.r, dataset.s, counts);
  }
  ASSERT_TRUE(info.ok()) << info.status().ToString();

  CountFactory reference(1);
  const uint64_t expected = baseline::ReferenceJoin(
      dataset.r.ToVector(), dataset.s.ToVector(), kind,
      reference.ConsumerForWorker(0));
  EXPECT_EQ(counts.Result(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, JoinKindTest,
    testing::Combine(testing::Values(JoinKind::kInner, JoinKind::kLeftSemi,
                                     JoinKind::kLeftAnti,
                                     JoinKind::kLeftOuter),
                     testing::Values(1u, 4u), testing::Bool()),
    [](const testing::TestParamInfo<std::tuple<JoinKind, uint32_t, bool>>&
           info) {
      std::string name = JoinKindName(std::get<0>(info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      name += "_t" + std::to_string(std::get<1>(info.param));
      name += std::get<2>(info.param) ? "_bmpsm" : "_pmpsm";
      return name;
    });

// ------------------------------------ kernel option matrix (tuning.md)

TEST(KernelOptionsTest, AllKernelCombinationsMatchReference) {
  // Every combination of the cache-conscious knobs (scatter kind, sort
  // kind, prefetch on/off, prefix skip on/off, simd scalar/auto) and
  // both schedulers (static and stealing) must produce the reference
  // count through both P-MPSM and B-MPSM; the fast defaults may differ
  // from the scalar paths only in speed.
  const auto topology = TestTopology();
  DatasetSpec spec;
  spec.r_tuples = 12000;
  spec.multiplicity = 1.5;
  spec.key_domain = 30000;
  spec.s_mode = SKeyMode::kIndependent;
  spec.seed = 4242;
  const uint32_t team_size = 4;
  const auto dataset = workload::Generate(topology, team_size, spec);

  CountFactory reference(1);
  const uint64_t expected =
      baseline::ReferenceJoin(dataset.r.ToVector(), dataset.s.ToVector(),
                              JoinKind::kInner,
                              reference.ConsumerForWorker(0));

  for (SchedulerKind scheduler :
       {SchedulerKind::kStatic, SchedulerKind::kStealing}) {
    for (ScatterKind scatter :
         {ScatterKind::kScalar, ScatterKind::kWriteCombining,
          ScatterKind::kAuto}) {
    for (sort::SortKind sort_kind :
         {sort::SortKind::kSinglePassRadix, sort::SortKind::kMultiPassRadix,
          sort::SortKind::kIntroSort}) {
      for (uint32_t prefetch : {0u, kDefaultMergePrefetchDistance}) {
        for (bool skip_prefix : {false, true}) {
        for (simd::SimdKind simd_kind :
             {simd::SimdKind::kScalar, simd::SimdKind::kAuto}) {
          MpsmOptions options;
          options.scheduler = scheduler;
          options.scatter = scatter;
          options.sort = sort_kind;
          options.merge_prefetch_distance = prefetch;
          options.merge_skip_private_prefix = skip_prefix;
          options.simd = simd_kind;
          options.sort_config.simd = simd_kind;
          options.morsel_tuples = 1024;  // small enough to slice at test size

          const auto label = [&] {
            return std::string(SchedulerKindName(scheduler)) + "/" +
                   ScatterKindName(scatter) + "/" +
                   sort::SortKindName(sort_kind) + "/pf" +
                   std::to_string(prefetch) + "/skip" +
                   std::to_string(skip_prefix) + "/" +
                   simd::SimdKindName(simd_kind);
          };
          {
            WorkerTeam team(topology, team_size);
            CountFactory counts(team_size);
            const auto info = PMpsmJoin(options).Execute(team, dataset.r,
                                                         dataset.s, counts);
            ASSERT_TRUE(info.ok()) << info.status().ToString();
            EXPECT_EQ(counts.Result(), expected) << "p-mpsm " << label();
          }
          {
            WorkerTeam team(topology, team_size);
            CountFactory counts(team_size);
            const auto info = BMpsmJoin(options).Execute(team, dataset.r,
                                                         dataset.s, counts);
            ASSERT_TRUE(info.ok()) << info.status().ToString();
            EXPECT_EQ(counts.Result(), expected) << "b-mpsm " << label();
          }
        }
        }
      }
    }
    }
  }
}

// ------------------------------------- adaptive morsel sizing (auto)

TEST(AdaptiveMorselTest, AutoSliceMatchesReferenceUnderSkew) {
  // morsel_tuples = 0 derives the phase-2 slice from chunk sizes and
  // the phase-3/4 slice from the actual partition/run sizes; a skewed
  // private input makes those resolutions differ. Output must stay
  // exactly the reference for both MPSM variants.
  const auto topology = TestTopology();
  DatasetSpec spec;
  spec.r_tuples = 30000;
  spec.multiplicity = 2.0;
  spec.key_domain = 60000;
  spec.r_distribution = KeyDistribution::kSkewLowEnd;
  spec.s_mode = SKeyMode::kIndependent;
  spec.seed = 616;
  const uint32_t team_size = 4;
  const auto dataset = workload::Generate(topology, team_size, spec);

  CountFactory reference(1);
  const uint64_t expected =
      baseline::ReferenceJoin(dataset.r.ToVector(), dataset.s.ToVector(),
                              JoinKind::kInner,
                              reference.ConsumerForWorker(0));

  MpsmOptions options;
  options.scheduler = SchedulerKind::kStealing;
  options.morsel_tuples = 0;  // adaptive
  options.cost_balanced_splitters = false;  // keep the partitions skewed
  {
    WorkerTeam team(topology, team_size);
    CountFactory counts(team_size);
    const auto info =
        PMpsmJoin(options).Execute(team, dataset.r, dataset.s, counts);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_EQ(counts.Result(), expected);
  }
  {
    WorkerTeam team(topology, team_size);
    CountFactory counts(team_size);
    const auto info =
        BMpsmJoin(options).Execute(team, dataset.r, dataset.s, counts);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_EQ(counts.Result(), expected);
  }
  // The engine front door must accept the 0 knob too.
  engine::EngineOptions engine_options;
  engine_options.workers = team_size;
  engine_options.morsel_tuples = 0;
  engine_options.scheduler = SchedulerKind::kStealing;
  engine::Engine engine(topology, engine_options);
  CountFactory counts(team_size);
  engine::JoinSpec join;
  join.r = &dataset.r;
  join.s = &dataset.s;
  join.consumers = &counts;
  join.algorithm = engine::Algorithm::kPMpsm;
  auto report = engine.Execute(join);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(counts.Result(), expected);
}

// --------------------------------------------- materialized row check

TEST(JoinOutputTest, MaterializedRowsMatchReferenceMultiset) {
  const auto topology = TestTopology();
  DatasetSpec spec;
  spec.r_tuples = 3000;
  spec.multiplicity = 2.0;
  spec.key_domain = 6000;
  spec.s_mode = SKeyMode::kIndependent;
  const auto dataset = workload::Generate(topology, 4, spec);

  WorkerTeam team(topology, 4);
  MaterializeFactory rows(4);
  auto info = PMpsmJoin().Execute(team, dataset.r, dataset.s, rows);
  ASSERT_TRUE(info.ok());

  MaterializeFactory expected_rows(1);
  baseline::ReferenceJoin(dataset.r.ToVector(), dataset.s.ToVector(),
                          JoinKind::kInner,
                          expected_rows.ConsumerForWorker(0));

  auto actual = rows.AllRows();
  auto expected = expected_rows.AllRows();
  auto row_less = [](const OutputRow& a, const OutputRow& b) {
    return std::tie(a.key, a.r_payload, a.s_payload) <
           std::tie(b.key, b.r_payload, b.s_payload);
  };
  std::sort(actual.begin(), actual.end(), row_less);
  std::sort(expected.begin(), expected.end(), row_less);
  EXPECT_EQ(actual, expected);
}

// MPSM output arrives quasi-sorted: each worker's rows are grouped into
// runs sorted by key (one run per public input run scanned). With one
// public run per worker and T workers, each worker emits T sorted
// segments — the "interesting physical property" of §6/§7. A property
// of the static script (stealing range-slices the merges), so pin it.
TEST(JoinOutputTest, WorkerOutputIsQuasiSorted) {
  const auto topology = TestTopology();
  DatasetSpec spec;
  spec.r_tuples = 4000;
  spec.multiplicity = 1.0;
  spec.key_domain = 4000;
  const auto dataset = workload::Generate(topology, 4, spec);

  MpsmOptions static_options;
  static_options.scheduler = SchedulerKind::kStatic;
  WorkerTeam team(topology, 4);
  MaterializeFactory rows(4);
  auto info =
      PMpsmJoin(static_options).Execute(team, dataset.r, dataset.s, rows);
  ASSERT_TRUE(info.ok());

  for (uint32_t w = 0; w < 4; ++w) {
    const auto& out = rows.RowsOfWorker(w);
    // Count descents: at most team_size segments => at most 3 descents.
    uint32_t descents = 0;
    for (size_t i = 1; i < out.size(); ++i) {
      if (out[i].key < out[i - 1].key) ++descents;
    }
    EXPECT_LE(descents, 3u) << "worker " << w;
  }
}

// Location skew (§5.5): key-ordered S must not change the result.
TEST(JoinOutputTest, LocationSkewPreservesResult) {
  const auto topology = TestTopology();
  DatasetSpec spec;
  spec.r_tuples = 10000;
  spec.multiplicity = 4.0;
  spec.seed = 5;

  spec.s_arrangement = Arrangement::kShuffled;
  const auto base = workload::Generate(topology, 4, spec);
  spec.s_arrangement = Arrangement::kKeyOrdered;
  const auto skewed = workload::Generate(topology, 4, spec);

  WorkerTeam team(topology, 4);
  CountFactory counts_base(4), counts_skew(4);
  ASSERT_TRUE(PMpsmJoin().Execute(team, base.r, base.s, counts_base).ok());
  ASSERT_TRUE(
      PMpsmJoin().Execute(team, skewed.r, skewed.s, counts_skew).ok());
  EXPECT_EQ(counts_base.Result(), counts_skew.Result());
}

// Mismatched chunking must be rejected, not crash.
TEST(JoinErrorTest, RejectsWrongChunkCount) {
  const auto topology = TestTopology();
  DatasetSpec spec;
  spec.r_tuples = 100;
  spec.multiplicity = 1.0;
  const auto dataset = workload::Generate(topology, 2, spec);

  WorkerTeam team(topology, 4);  // != 2 chunks
  CountFactory counts(4);
  auto p = PMpsmJoin().Execute(team, dataset.r, dataset.s, counts);
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument);
  auto b = BMpsmJoin().Execute(team, dataset.r, dataset.s, counts);
  EXPECT_FALSE(b.ok());
  auto w = baseline::WisconsinHashJoin().Execute(team, dataset.r, dataset.s,
                                                 counts);
  EXPECT_FALSE(w.ok());
  auto rx =
      baseline::RadixHashJoin().Execute(team, dataset.r, dataset.s, counts);
  EXPECT_FALSE(rx.ok());
}

// Joins with an empty side.
TEST(JoinEdgeTest, EmptyInputs) {
  const auto topology = TestTopology();
  WorkerTeam team(topology, 4);

  Relation empty_r = Relation::Allocate(topology, 0, 4);
  DatasetSpec spec;
  spec.r_tuples = 1000;
  spec.multiplicity = 1.0;
  const auto dataset = workload::Generate(topology, 4, spec);

  {
    CountFactory counts(4);
    auto info = PMpsmJoin().Execute(team, empty_r, dataset.s, counts);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_EQ(counts.Result(), 0u);
  }
  {
    Relation empty_s = Relation::Allocate(topology, 0, 4);
    CountFactory counts(4);
    auto info = PMpsmJoin().Execute(team, dataset.r, empty_s, counts);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_EQ(counts.Result(), 0u);
  }
  {
    // Anti join with empty S: everything in R is unmatched.
    Relation empty_s = Relation::Allocate(topology, 0, 4);
    MpsmOptions options;
    options.kind = JoinKind::kLeftAnti;
    CountFactory counts(4);
    auto info =
        PMpsmJoin(options).Execute(team, dataset.r, empty_s, counts);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_EQ(counts.Result(), dataset.r.size());
  }
}

}  // namespace
}  // namespace mpsm

// JoinService: admission control under budget exhaustion, queued-query
// cancellation, cross-session worker donation, shared-sort batching,
// the planner feedback loop, and a randomized concurrent stress sweep
// against the reference join.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "baseline/reference_join.h"
#include "core/consumers.h"
#include "core/public_runs.h"
#include "engine/engine.h"
#include "numa/topology.h"
#include "parallel/donation.h"
#include "parallel/task_scheduler.h"
#include "service/join_service.h"
#include "workload/generator.h"

namespace mpsm::service {
namespace {

numa::Topology Topo() { return numa::Topology::Simulated(2, 4); }

constexpr uint32_t kChunks = 4;

workload::Dataset MakeDataset(const numa::Topology& topology, size_t r_tuples,
                              uint64_t seed,
                              double multiplicity = 1.5) {
  workload::DatasetSpec spec;
  spec.r_tuples = r_tuples;
  spec.multiplicity = multiplicity;
  spec.key_domain = 4 * r_tuples;  // duplicates and unmatched keys exist
  spec.s_mode = workload::SKeyMode::kIndependent;
  spec.seed = seed;
  return workload::Generate(topology, kChunks, spec);
}

uint64_t Reference(const Relation& r, const Relation& s, JoinKind kind) {
  CountFactory reference(1);
  return baseline::ReferenceJoin(r.ToVector(), s.ToVector(), kind,
                                 reference.ConsumerForWorker(0));
}

/// Counts like CountFactory, but every worker blocks at its first
/// OnMatch until the test opens the gate — the deterministic way to
/// keep a lane busy while the queue behind it builds up.
class GateFactory : public ConsumerFactory {
 public:
  explicit GateFactory(uint32_t team_size) {
    for (uint32_t w = 0; w < team_size; ++w) {
      workers_.push_back(std::make_unique<Consumer>(this));
    }
  }

  JoinConsumer& ConsumerForWorker(uint32_t w) override {
    return *workers_[w];
  }

  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

  uint64_t Result() const {
    uint64_t total = 0;
    for (const auto& w : workers_) total += w->count;
    return total;
  }

 private:
  class Consumer : public JoinConsumer {
   public:
    explicit Consumer(GateFactory* gate) : gate_(gate) {}
    void OnMatch(const Tuple&, const Tuple*, size_t s_count) override {
      if (!passed_) {
        std::unique_lock<std::mutex> lock(gate_->mu_);
        gate_->cv_.wait(lock, [&] { return gate_->open_; });
        passed_ = true;
      }
      count += s_count;
    }
    uint64_t count = 0;

   private:
    GateFactory* gate_;
    bool passed_ = false;
  };

  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
  std::vector<std::unique_ptr<Consumer>> workers_;
};

// --------------------------------------------------------- defaults

TEST(SchedulerDefaultTest, InMemoryVariantsDefaultToStealing) {
  // The work-stealing scheduler is the default phase orchestration
  // since run generation became sliceable below chunk granularity; the
  // paper's static scripts stay available as the A/B knob.
  EXPECT_EQ(MpsmOptions{}.scheduler, SchedulerKind::kStealing);
}

// ------------------------------------------------------- admission

TEST(ServiceAdmissionTest, OverBudgetInnerJoinDownBudgetsToSpill) {
  const auto topology = Topo();
  // Working set = 2 * (|R| + |S|) * 16 ~ 6 MB against a 1 MB budget.
  const auto dataset = MakeDataset(topology, 1u << 16, 11, 2.0);

  ServiceOptions options;
  options.lanes = 2;
  options.memory_budget_bytes = uint64_t{1} << 20;
  JoinService svc(topology, options);

  CountFactory counts(kChunks);
  engine::JoinSpec spec;
  spec.r = &dataset.r;
  spec.s = &dataset.s;
  spec.consumers = &counts;

  auto id = svc.Submit(spec);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto report = svc.Wait(*id);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // The governor re-planned the query to spill within the budget
  // instead of admitting an over-budget in-memory run.
  EXPECT_EQ(report->plan.algorithm, engine::Algorithm::kDMpsm);
  EXPECT_EQ(svc.stats().down_budgeted, 1u);
  EXPECT_LE(svc.stats().peak_reserved_bytes, options.memory_budget_bytes);
  EXPECT_EQ(counts.Result(),
            Reference(dataset.r, dataset.s, JoinKind::kInner));
}

TEST(ServiceAdmissionTest, UnspillableOverBudgetJoinFailsCleanly) {
  const auto topology = Topo();
  const auto dataset = MakeDataset(topology, 1u << 16, 12, 2.0);

  ServiceOptions options;
  options.lanes = 2;
  options.memory_budget_bytes = uint64_t{1} << 20;
  JoinService svc(topology, options);

  // Outer joins cannot take the D-MPSM spill path, so a working set
  // over the whole budget can never be admitted: the service must
  // answer with a clean ResourceExhausted, not deadlock or OOM.
  CountFactory counts(kChunks);
  engine::JoinSpec spec;
  spec.r = &dataset.r;
  spec.s = &dataset.s;
  spec.kind = JoinKind::kLeftOuter;
  spec.consumers = &counts;

  auto id = svc.Submit(spec);
  ASSERT_TRUE(id.ok());
  auto report = svc.Wait(*id);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(svc.stats().rejected, 1u);

  // The failure released its (zero) reservation: an in-budget query
  // afterwards still runs.
  CountFactory counts2(kChunks);
  const auto small = MakeDataset(topology, 1u << 12, 13);
  engine::JoinSpec ok_spec;
  ok_spec.r = &small.r;
  ok_spec.s = &small.s;
  ok_spec.consumers = &counts2;
  auto ok_id = svc.Submit(ok_spec);
  ASSERT_TRUE(ok_id.ok());
  auto ok_report = svc.Wait(*ok_id);
  ASSERT_TRUE(ok_report.ok()) << ok_report.status().ToString();
  EXPECT_EQ(counts2.Result(), Reference(small.r, small.s, JoinKind::kInner));
}

TEST(ServiceAdmissionTest, FullQueueRejectsAndCancelRemovesQueuedQuery) {
  const auto topology = Topo();
  // Foreign-key S guarantees matches, so the gate consumer always
  // blocks the lane.
  workload::DatasetSpec dspec;
  dspec.r_tuples = 1u << 12;
  dspec.seed = 21;
  const auto gate_data = workload::Generate(topology, kChunks, dspec);
  const auto queued_data = MakeDataset(topology, 1u << 12, 22);

  ServiceOptions options;
  options.lanes = 1;
  options.max_queue = 1;
  JoinService svc(topology, options);

  GateFactory gate(kChunks);
  engine::JoinSpec gated;
  gated.r = &gate_data.r;
  gated.s = &gate_data.s;
  gated.consumers = &gate;
  auto gated_id = svc.Submit(gated);
  ASSERT_TRUE(gated_id.ok());

  // The single lane is blocked inside the gated query; the next submit
  // occupies the whole queue and the one after bounces.
  CountFactory counts(kChunks);
  engine::JoinSpec queued;
  queued.r = &queued_data.r;
  queued.s = &queued_data.s;
  queued.consumers = &counts;
  // Give the lane a moment to pull the gated query off the queue.
  while (svc.stats().peak_reserved_bytes == 0) std::this_thread::yield();
  auto queued_id = svc.Submit(queued);
  ASSERT_TRUE(queued_id.ok());
  auto bounced = svc.Submit(queued);
  ASSERT_FALSE(bounced.ok());
  EXPECT_EQ(bounced.status().code(), StatusCode::kResourceExhausted);

  // Cancelling the queued query frees its slot and fails its Wait with
  // kCancelled; the running query is not cancellable.
  EXPECT_FALSE(svc.Cancel(*gated_id).ok());
  ASSERT_TRUE(svc.Cancel(*queued_id).ok());
  auto cancelled = svc.Wait(*queued_id);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);

  gate.Open();
  auto gated_report = svc.Wait(*gated_id);
  ASSERT_TRUE(gated_report.ok()) << gated_report.status().ToString();
  EXPECT_EQ(gate.Result(),
            Reference(gate_data.r, gate_data.s, JoinKind::kInner));
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

// -------------------------------------------------------- donation

TEST(DonationPoolTest, GuestExecutesForeignMorselsUntilClose) {
  const auto topology = Topo();
  DonationPool pool;
  const uint64_t host = pool.RegisterSession();
  const uint64_t guest = pool.RegisterSession();

  constexpr uint32_t kTeam = 4;
  TaskScheduler scheduler(topology, kTeam, SchedulerKind::kStealing);
  scheduler.Reset(ChunkMorsels(kTeam));

  std::array<bool, kTeam> seen{};
  uint32_t executed = 0;
  std::function<void(WorkerContext&, const Morsel&)> body =
      [&](WorkerContext& ctx, const Morsel& morsel) {
        // Guests run under the sentinel worker id == host team size.
        EXPECT_EQ(ctx.worker_id, kTeam);
        seen[morsel.task] = true;
        ++executed;
      };

  const DonationPool::Ticket ticket =
      pool.Publish(host, &scheduler, &body, &topology, kTeam);
  // A session never helps itself.
  EXPECT_FALSE(pool.TryHelp(host, 0));
  while (pool.TryHelp(guest, 0)) {
  }
  EXPECT_EQ(executed, kTeam);
  for (const bool s : seen) EXPECT_TRUE(s);
  EXPECT_EQ(pool.morsels_donated(), kTeam);

  pool.Close(ticket);
  scheduler.Reset(ChunkMorsels(kTeam));
  // Closed publications take no more guests.
  EXPECT_FALSE(pool.TryHelp(guest, 0));
  EXPECT_EQ(pool.stats().phases_published, 1u);
}

TEST(DonationPoolTest, GuestUnblocksStragglerPhase) {
  // A one-worker host team runs a guest-safe stealing phase whose
  // first morsel blocks until a guest has donated work — progress at
  // all proves cross-session donation drains a straggler's backlog.
  const auto topology = Topo();
  DonationPool pool;
  WorkerTeam team(topology, 1);
  team.set_donation(&pool);

  std::atomic<uint32_t> donated{0};
  PhasePipeline pipeline(topology, 1, SchedulerKind::kStealing);
  pipeline.AddPhase(
      kPhaseJoin,
      [] {
        std::vector<Morsel> morsels;
        for (uint32_t t = 0; t < 8; ++t) {
          morsels.push_back(Morsel{0, t, 0, 1});
        }
        return morsels;
      },
      [&](WorkerContext& ctx, const Morsel& morsel) {
        if (ctx.worker_id == 1) {
          donated.fetch_add(1);  // executed by a guest
        } else if (morsel.task == 0) {
          while (donated.load() == 0) std::this_thread::yield();
        }
      },
      PhasePipeline::PhaseOptions{.guest_safe = true});

  const uint64_t guest = pool.RegisterSession();
  std::thread helper([&] {
    while (donated.load() == 0) {
      if (!pool.TryHelp(guest, 0)) std::this_thread::yield();
    }
    while (pool.TryHelp(guest, 0)) {
    }
  });
  pipeline.Run(team);
  helper.join();
  EXPECT_GT(donated.load(), 0u);
  EXPECT_EQ(pool.morsels_donated(), donated.load());
}

// ------------------------------------------------- shared-sort batch

TEST(ServiceBatchingTest, SharedSortBatchesCompatibleQueries) {
  const auto topology = Topo();
  // One public input, several private inputs: the fact-table pattern
  // shared-sort batching exists for.
  const auto shared = MakeDataset(topology, 1u << 14, 31, 2.0);
  constexpr size_t kClients = 4;
  std::vector<workload::Dataset> privates;
  for (size_t c = 0; c < kClients; ++c) {
    privates.push_back(MakeDataset(topology, 1u << 14, 100 + c));
  }
  workload::DatasetSpec gate_spec;
  gate_spec.r_tuples = 1u << 12;
  gate_spec.seed = 32;
  const auto gate_data = workload::Generate(topology, kChunks, gate_spec);

  ServiceOptions options;
  options.lanes = 1;  // deterministic: the queue builds behind the gate
  options.engine.force_algorithm = engine::Algorithm::kPMpsm;
  JoinService svc(topology, options);

  GateFactory gate(kChunks);
  engine::JoinSpec gated;
  gated.r = &gate_data.r;
  gated.s = &gate_data.s;
  gated.consumers = &gate;
  auto gated_id = svc.Submit(gated);
  ASSERT_TRUE(gated_id.ok());
  while (svc.stats().peak_reserved_bytes == 0) std::this_thread::yield();

  std::vector<std::unique_ptr<CountFactory>> counts;
  std::vector<JoinService::QueryId> ids;
  for (size_t c = 0; c < kClients; ++c) {
    counts.push_back(std::make_unique<CountFactory>(kChunks));
    engine::JoinSpec spec;
    spec.r = &privates[c].r;
    spec.s = &shared.s;  // the same public relation for every client
    spec.consumers = counts.back().get();
    auto id = svc.Submit(spec);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  gate.Open();

  for (size_t c = 0; c < kClients; ++c) {
    auto report = svc.Wait(ids[c]);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->plan.algorithm, engine::Algorithm::kPMpsm);
    EXPECT_EQ(counts[c]->Result(),
              Reference(privates[c].r, shared.s, JoinKind::kInner));
  }
  const ServiceStats stats = svc.stats();
  EXPECT_GE(stats.batches, 1u);
  EXPECT_EQ(stats.batched_queries, kClients);
  auto gated_report = svc.Wait(*gated_id);
  ASSERT_TRUE(gated_report.ok());
}

TEST(PublicRunsTest, SharedRunsReproduceTheUnsharedJoin) {
  const auto topology = Topo();
  const auto a = MakeDataset(topology, 1u << 14, 41);
  const auto b = MakeDataset(topology, 1u << 14, 42);

  engine::EngineOptions options;
  options.force_algorithm = engine::Algorithm::kPMpsm;
  engine::Engine engine(topology, options);

  auto runs =
      BuildPublicRuns(engine.EnsureTeam(kChunks), a.s,
                      engine::ResolveMpsmOptions(options, JoinKind::kInner));
  ASSERT_TRUE(runs.ok()) << runs.status().ToString();
  EXPECT_EQ(runs->runs.size(), kChunks);
  EXPECT_EQ(runs->histograms.size(), kChunks);
  EXPECT_GT(runs->bytes(), 0u);

  for (const Relation* r : {&a.r, &b.r}) {
    CountFactory with_shared(kChunks);
    engine::JoinSpec spec;
    spec.r = r;
    spec.s = &a.s;
    spec.consumers = &with_shared;
    spec.shared_public_runs = &*runs;
    auto shared_report = engine.Execute(spec);
    ASSERT_TRUE(shared_report.ok()) << shared_report.status().ToString();

    CountFactory without(kChunks);
    spec.consumers = &without;
    spec.shared_public_runs = nullptr;
    auto plain_report = engine.Execute(spec);
    ASSERT_TRUE(plain_report.ok());
    EXPECT_EQ(with_shared.Result(), without.Result());
    EXPECT_EQ(with_shared.Result(), Reference(*r, a.s, JoinKind::kInner));
  }
}

TEST(PublicRunsTest, WrongTeamSizeIsRejected) {
  const auto topology = Topo();
  const auto dataset = MakeDataset(topology, 1u << 13, 43);
  engine::EngineOptions options;
  options.force_algorithm = engine::Algorithm::kPMpsm;
  engine::Engine engine(topology, options);

  auto runs = BuildPublicRuns(engine.EnsureTeam(kChunks), dataset.s);
  ASSERT_TRUE(runs.ok());

  engine::EngineOptions two_workers = options;
  two_workers.workers = 2;
  const auto dataset2 = workload::Generate(
      topology, 2, workload::DatasetSpec{.r_tuples = 1u << 13, .seed = 45});
  engine::Engine engine2(topology, two_workers);
  CountFactory counts(2);
  engine::JoinSpec spec;
  spec.r = &dataset2.r;
  spec.s = &dataset2.s;
  spec.consumers = &counts;
  spec.shared_public_runs = &*runs;  // built for 4 workers
  auto report = engine2.Execute(spec);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------- planner feedback

TEST(RecalibrationTest, SessionModelDriftsTowardMeasuredCoefficients) {
  const auto topology = Topo();
  const auto dataset = MakeDataset(topology, 1u << 14, 51, 2.0);

  engine::EngineOptions options;
  options.recalibrate = true;
  options.force_algorithm = engine::Algorithm::kPMpsm;
  engine::Engine engine(topology, options);
  const sim::MachineModel before = engine.machine();

  CountFactory counts(kChunks);
  engine::JoinSpec spec;
  spec.r = &dataset.r;
  spec.s = &dataset.s;
  spec.consumers = &counts;
  auto report = engine.Execute(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // The report carries predicted and measured phase costs side by side.
  EXPECT_GT(report->measured_seconds, 0.0);

  const sim::MachineModel after = engine.machine();
  // The paper's HyPer1 coefficients never match this host exactly, so
  // one observed run must move the session model.
  EXPECT_NE(before.ns_per_sort_unit, after.ns_per_sort_unit);

  // A per-query options override must not steer the session model.
  const sim::MachineModel pinned = engine.machine();
  engine::EngineOptions per_query = options;
  CountFactory counts2(kChunks);
  spec.consumers = &counts2;
  spec.options = &per_query;
  ASSERT_TRUE(engine.Execute(spec).ok());
  EXPECT_EQ(engine.machine().ns_per_sort_unit, pinned.ns_per_sort_unit);
}

// ----------------------------------------------------------- stress

TEST(ServiceStressTest, RandomizedConcurrentSweepMatchesReference) {
  const auto topology = Topo();
  constexpr size_t kQueries = 200;
  constexpr size_t kClientThreads = 4;
  constexpr std::array<JoinKind, 4> kKinds = {
      JoinKind::kInner, JoinKind::kLeftSemi, JoinKind::kLeftAnti,
      JoinKind::kLeftOuter};

  // A shared public input for half the queries (exercises batching)
  // and a private dataset per query.
  const auto shared = MakeDataset(topology, 1u << 13, 61, 2.0);
  struct Query {
    workload::Dataset data;
    const Relation* s = nullptr;
    JoinKind kind = JoinKind::kInner;
    uint64_t expected = 0;
    std::unique_ptr<CountFactory> counts;
  };
  std::vector<Query> queries(kQueries);
  for (size_t q = 0; q < kQueries; ++q) {
    const size_t r_tuples = 512u << (q % 4);  // 512 .. 4096
    queries[q].data = MakeDataset(topology, r_tuples, 1000 + q);
    const bool use_shared = q % 2 == 0;
    queries[q].s = use_shared ? &shared.s : &queries[q].data.s;
    // Only inner joins batch against the shared input; vary the kind
    // on the private half.
    queries[q].kind = use_shared ? JoinKind::kInner : kKinds[q % kKinds.size()];
    queries[q].expected =
        Reference(queries[q].data.r, *queries[q].s, queries[q].kind);
    queries[q].counts = std::make_unique<CountFactory>(kChunks);
  }

  ServiceOptions options;
  options.lanes = 3;
  // Tight enough that the governor actually queues work behind it.
  options.memory_budget_bytes = uint64_t{4} << 20;
  JoinService svc(topology, options);

  std::atomic<size_t> failures{0};
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      for (size_t q = t; q < kQueries; q += kClientThreads) {
        engine::JoinSpec spec;
        spec.r = &queries[q].data.r;
        spec.s = queries[q].s;
        spec.kind = queries[q].kind;
        spec.consumers = queries[q].counts.get();
        auto id = svc.Submit(spec);
        if (!id.ok()) {
          ++failures;
          continue;
        }
        auto report = svc.Wait(*id);
        if (!report.ok() ||
            queries[q].counts->Result() != queries[q].expected) {
          ++failures;
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  svc.Drain();

  EXPECT_EQ(failures.load(), 0u);
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.submitted, kQueries);
  EXPECT_EQ(stats.completed, kQueries);
  EXPECT_EQ(stats.rejected + stats.failed + stats.cancelled, 0u);
  EXPECT_LE(stats.peak_reserved_bytes, options.memory_budget_bytes);
}

}  // namespace
}  // namespace mpsm::service

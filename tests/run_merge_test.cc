// Loser-tree multiway run merge and sort-based group-by (the §7
// "exploit the rough sort order" extension).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/run_merge.h"
#include "sort/radix_introsort.h"
#include "util/rng.h"

namespace mpsm {
namespace {

std::vector<std::vector<Tuple>> MakeSortedRuns(uint32_t k, size_t max_size,
                                               uint64_t seed,
                                               uint64_t domain = 10000) {
  Xoshiro256 rng(seed);
  std::vector<std::vector<Tuple>> storage(k);
  for (auto& run : storage) {
    run.resize(rng.NextBounded(max_size + 1));
    for (auto& t : run) t = Tuple{rng.NextBounded(domain), rng.Next() & 0xFF};
    sort::RadixIntroSort(run.data(), run.size());
  }
  return storage;
}

std::vector<Run> AsRuns(std::vector<std::vector<Tuple>>& storage) {
  std::vector<Run> runs;
  for (auto& s : storage) runs.push_back(Run{s.data(), s.size(), 0});
  return runs;
}

class LoserTreeTest : public testing::TestWithParam<uint32_t> {};

TEST_P(LoserTreeTest, ProducesGloballySortedPermutation) {
  const uint32_t k = GetParam();
  for (uint64_t seed = 0; seed < 5; ++seed) {
    auto storage = MakeSortedRuns(k, 500, seed);
    const auto merged = MergeRuns(AsRuns(storage));

    std::vector<Tuple> expected;
    for (const auto& run : storage) {
      expected.insert(expected.end(), run.begin(), run.end());
    }
    ASSERT_EQ(merged.size(), expected.size());
    EXPECT_TRUE(sort::IsSortedByKey(merged.data(), merged.size()));

    auto full_less = [](const Tuple& a, const Tuple& b) {
      return a.key != b.key ? a.key < b.key : a.payload < b.payload;
    };
    auto got = merged;
    std::sort(got.begin(), got.end(), full_less);
    std::sort(expected.begin(), expected.end(), full_less);
    EXPECT_EQ(got, expected) << "k=" << k << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, LoserTreeTest,
                         testing::Values(1u, 2u, 3u, 5u, 8u, 17u, 64u),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

TEST(LoserTreeTest, AllRunsEmpty) {
  std::vector<std::vector<Tuple>> storage(4);
  LoserTreeMerger merger(AsRuns(storage));
  EXPECT_FALSE(merger.HasNext());
  EXPECT_EQ(merger.remaining(), 0u);
}

TEST(LoserTreeTest, NoRuns) {
  LoserTreeMerger merger({});
  EXPECT_FALSE(merger.HasNext());
}

TEST(LoserTreeTest, SingleRunPassesThrough) {
  std::vector<Tuple> run = {{1, 10}, {2, 20}, {2, 21}, {9, 90}};
  const auto merged = MergeRuns({::mpsm::Run{run.data(), run.size(), 0}});
  EXPECT_EQ(merged, run);
}

TEST(LoserTreeTest, SentinelKeyTuplesSurvive) {
  // Tuples with key UINT64_MAX collide with the exhaustion sentinel;
  // they must still all be emitted.
  std::vector<Tuple> a = {{5, 1}, {~uint64_t{0}, 2}};
  std::vector<Tuple> b = {{~uint64_t{0}, 3}};
  const auto merged = MergeRuns(
      {::mpsm::Run{a.data(), a.size(), 0}, ::mpsm::Run{b.data(), b.size(), 0}});
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].key, 5u);
  EXPECT_EQ(merged[1].key, ~uint64_t{0});
  EXPECT_EQ(merged[2].key, ~uint64_t{0});
}

TEST(SortedGroupByTest, MatchesMapBasedAggregation) {
  for (uint64_t seed = 10; seed < 14; ++seed) {
    auto storage = MakeSortedRuns(6, 400, seed, /*domain=*/50);

    std::map<uint64_t, std::tuple<uint64_t, uint64_t, uint64_t>> expected;
    for (const auto& run : storage) {
      for (const Tuple& t : run) {
        auto& [count, sum, max] = expected[t.key];
        ++count;
        sum += t.payload;
        max = std::max(max, t.payload);
      }
    }

    uint64_t previous_key = 0;
    bool first = true;
    size_t groups = 0;
    SortedGroupBy(AsRuns(storage), [&](uint64_t key, uint64_t count,
                                       uint64_t sum, uint64_t max) {
      if (!first) {
        EXPECT_GT(key, previous_key);  // ascending, distinct
      }
      first = false;
      previous_key = key;
      ++groups;
      auto it = expected.find(key);
      ASSERT_NE(it, expected.end());
      EXPECT_EQ(count, std::get<0>(it->second));
      EXPECT_EQ(sum, std::get<1>(it->second));
      EXPECT_EQ(max, std::get<2>(it->second));
    });
    EXPECT_EQ(groups, expected.size());
  }
}

TEST(SortedGroupByTest, EmptyInput) {
  SortedGroupBy({}, [](uint64_t, uint64_t, uint64_t, uint64_t) { FAIL(); });
}

}  // namespace
}  // namespace mpsm

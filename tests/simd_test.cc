// SIMD kernel layer: every available SimdKind must match the scalar
// oracle bit for bit — advance/lower-bound, merge match sequence,
// search finishes, histograms, key ranges — plus dispatch resolution
// and the engine-level scalar-vs-auto A/B over the full algorithm x
// JoinKind matrix (the forced-scalar fallback CI leans on off-x86).
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "baseline/hash_table.h"
#include "baseline/reference_join.h"
#include "core/consumers.h"
#include "core/interpolation_search.h"
#include "core/merge_join.h"
#include "engine/engine.h"
#include "numa/topology.h"
#include "simd/caps.h"
#include "simd/histogram_kernels.h"
#include "simd/merge_kernels.h"
#include "simd/search_kernels.h"
#include "sort/radix_introsort.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace mpsm {
namespace {

std::vector<Tuple> SortedTuples(size_t n, uint64_t domain, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Tuple> data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = Tuple{rng.NextBounded(domain), i};
  }
  std::sort(data.begin(), data.end(), TupleKeyLess{});
  return data;
}

size_t OracleLowerBound(const std::vector<Tuple>& data, uint64_t key) {
  return static_cast<size_t>(
      std::lower_bound(data.begin(), data.end(), Tuple{key, 0},
                       TupleKeyLess{}) -
      data.begin());
}

// ------------------------------------------------------- dispatch

TEST(SimdCapsTest, ScalarIsAFixedPointAndAutoResolvesSupported) {
  EXPECT_EQ(simd::Resolve(simd::SimdKind::kScalar),
            simd::SimdKind::kScalar);
  const auto kinds = simd::SupportedKinds();
  ASSERT_FALSE(kinds.empty());
  EXPECT_EQ(kinds.front(), simd::SimdKind::kScalar);
  for (const simd::SimdKind kind : kinds) {
    EXPECT_EQ(simd::Resolve(kind), kind)
        << simd::SimdKindName(kind) << " must resolve to itself";
  }
  const simd::SimdKind resolved = simd::Resolve(simd::SimdKind::kAuto);
  EXPECT_NE(resolved, simd::SimdKind::kAuto);
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), resolved), kinds.end());
  // kAuto never picks kSse: the merge A/B measured it below scalar.
  EXPECT_NE(resolved, simd::SimdKind::kSse);
}

TEST(SimdCapsTest, UnsupportedKindsDegradeInsteadOfFaulting) {
  const simd::Caps& caps = simd::DetectCaps();
  if (!caps.avx512f) {
    const simd::SimdKind resolved = simd::Resolve(simd::SimdKind::kAvx512);
    EXPECT_TRUE(resolved == simd::SimdKind::kAvx2 ||
                resolved == simd::SimdKind::kScalar);
  }
  if (!caps.avx2) {
    EXPECT_EQ(simd::Resolve(simd::SimdKind::kAvx2),
              simd::SimdKind::kScalar);
  }
}

TEST(SimdCapsTest, KeysPerCompareMatchesRegisterWidth) {
  EXPECT_EQ(simd::KeysPerCompare(simd::SimdKind::kScalar), 1u);
  EXPECT_EQ(simd::KeysPerCompare(simd::SimdKind::kSse), 2u);
  EXPECT_EQ(simd::KeysPerCompare(simd::SimdKind::kAvx2), 4u);
  EXPECT_EQ(simd::KeysPerCompare(simd::SimdKind::kAvx512), 8u);
}

TEST(SimdCapsTest, KindNamesRoundTrip) {
  for (const simd::SimdKind kind :
       {simd::SimdKind::kScalar, simd::SimdKind::kSse,
        simd::SimdKind::kAvx2, simd::SimdKind::kAvx512,
        simd::SimdKind::kAuto}) {
    const auto parsed = simd::ParseSimdKind(simd::SimdKindName(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(simd::ParseSimdKind("mmx").has_value());
}

// ------------------------------------------------ advance kernels

class SimdKindSweep : public testing::TestWithParam<simd::SimdKind> {};

std::string KindName(const testing::TestParamInfo<simd::SimdKind>& info) {
  return simd::SimdKindName(info.param);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimdKindSweep,
                         testing::ValuesIn(simd::SupportedKinds()),
                         KindName);

TEST_P(SimdKindSweep, AdvanceMatchesLowerBoundOracle) {
  const simd::AdvanceFn advance = simd::AdvanceForKind(GetParam());
  if (advance == nullptr) GTEST_SKIP() << "scalar has no pointer kernel";

  for (const size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{17},
                         size_t{64}, size_t{1000}, size_t{5000}}) {
    // domain ~ n/2 forces heavy duplicates.
    const auto data = SortedTuples(n, std::max<uint64_t>(n / 2, 2), 7 + n);
    std::vector<uint64_t> keys{0, 1, UINT64_MAX};
    Xoshiro256 rng(n);
    for (int k = 0; k < 200; ++k) {
      keys.push_back(rng.NextBounded(std::max<uint64_t>(n, 4)));
    }
    for (size_t i = 0; i < n; i += std::max<size_t>(n / 13, 1)) {
      keys.push_back(data[i].key);      // exact hits
      keys.push_back(data[i].key + 1);  // just above
    }
    for (const uint64_t key : keys) {
      const size_t oracle = OracleLowerBound(data, key);
      // From the start, from a position at/below the bound, and from
      // the bound itself (the merge calls it mid-run).
      for (const size_t begin :
           {size_t{0}, oracle / 2, oracle, std::min(oracle + 1, n)}) {
        const size_t expected = std::max(oracle, begin);
        EXPECT_EQ(advance(data.data(), begin, n, key), expected)
            << "n=" << n << " key=" << key << " begin=" << begin;
      }
    }
  }
}

TEST_P(SimdKindSweep, AdvanceGallopsAcrossAllEqualRuns) {
  const simd::AdvanceFn advance = simd::AdvanceForKind(GetParam());
  if (advance == nullptr) GTEST_SKIP();
  // A long all-equal prefix exercises the gallop + binary narrowing.
  std::vector<Tuple> data(4000, Tuple{5, 0});
  for (size_t i = 0; i < 100; ++i) data.push_back(Tuple{9, i});
  EXPECT_EQ(advance(data.data(), 0, data.size(), 6), 4000u);
  EXPECT_EQ(advance(data.data(), 0, data.size(), 9), 4000u);
  EXPECT_EQ(advance(data.data(), 0, data.size(), 10), data.size());
  EXPECT_EQ(advance(data.data(), 0, data.size(), 5), 0u);
}

// ------------------------------------------------- merge kernels

struct MatchEvent {
  size_t r_index;
  uint64_t key;
  const Tuple* s_group;
  size_t count;

  friend bool operator==(const MatchEvent& a, const MatchEvent& b) {
    return a.r_index == b.r_index && a.key == b.key &&
           a.s_group == b.s_group && a.count == b.count;
  }
};

std::vector<MatchEvent> CollectMerge(simd::SimdKind kind, uint32_t prefetch,
                                     const std::vector<Tuple>& r,
                                     const std::vector<Tuple>& s,
                                     MergeScan* scan) {
  std::vector<MatchEvent> events;
  *scan = MergeJoinRunPairWith(
      prefetch, kind, r.data(), r.size(), s.data(), s.size(),
      [&](size_t i, const Tuple& rt, const Tuple* sg, size_t count) {
        events.push_back(MatchEvent{i, rt.key, sg, count});
      });
  return events;
}

TEST_P(SimdKindSweep, MergeMatchSequenceIsBitIdenticalToScalar) {
  struct Shape {
    size_t nr;
    size_t ns;
    uint64_t domain;
  };
  for (const Shape& shape :
       {Shape{3000, 12000, 6000},   // the paper's multiplicity-4 shape
        Shape{5000, 5000, 100},     // heavy duplicates both sides
        Shape{2000, 8000, 1u << 30},  // sparse: almost no matches
        Shape{1, 4000, 4000}, Shape{4000, 1, 4000}, Shape{0, 100, 10},
        Shape{100, 0, 10}}) {
    const auto r = SortedTuples(shape.nr, shape.domain, 21);
    const auto s = SortedTuples(shape.ns, shape.domain, 42);
    for (const uint32_t prefetch : {0u, kDefaultMergePrefetchDistance}) {
      MergeScan scalar_scan, simd_scan;
      const auto expected = CollectMerge(simd::SimdKind::kScalar, prefetch,
                                         r, s, &scalar_scan);
      const auto actual =
          CollectMerge(GetParam(), prefetch, r, s, &simd_scan);
      EXPECT_EQ(actual, expected)
          << "nr=" << shape.nr << " ns=" << shape.ns << " pf=" << prefetch;
      EXPECT_EQ(simd_scan.r_end, scalar_scan.r_end);
      EXPECT_EQ(simd_scan.s_end, scalar_scan.s_end);
      EXPECT_EQ(simd_scan.matches, scalar_scan.matches);
    }
  }
}

TEST_P(SimdKindSweep, MergeHandlesDisjointRunsViaGalloping) {
  // All of r below all of s, and interleaved bands — long skips drive
  // the window-exhausted + gallop paths.
  std::vector<Tuple> r, s;
  for (size_t i = 0; i < 3000; ++i) r.push_back(Tuple{i, i});
  for (size_t i = 0; i < 3000; ++i) s.push_back(Tuple{10000 + i, i});
  MergeScan scalar_scan, simd_scan;
  const auto expected = CollectMerge(simd::SimdKind::kScalar, 16, r, s,
                                     &scalar_scan);
  const auto actual = CollectMerge(GetParam(), 16, r, s, &simd_scan);
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(expected.size(), 0u);
  EXPECT_EQ(simd_scan.r_end, scalar_scan.r_end);
  EXPECT_EQ(simd_scan.s_end, scalar_scan.s_end);
}

// ------------------------------------------------- search kernels

TEST_P(SimdKindSweep, WindowedSearchesMatchOracle) {
  const simd::AdvanceFn advance = simd::AdvanceForKind(GetParam());
  if (advance == nullptr) GTEST_SKIP();

  for (const size_t n :
       {size_t{0}, size_t{1}, size_t{50}, size_t{4096}, size_t{100000}}) {
    const auto data = SortedTuples(n, std::max<uint64_t>(2 * n, 4), 5);
    Xoshiro256 rng(n + 1);
    std::vector<uint64_t> keys{0, UINT64_MAX};
    for (int k = 0; k < 300; ++k) {
      keys.push_back(rng.NextBounded(std::max<uint64_t>(2 * n, 4)));
    }
    for (const uint64_t key : keys) {
      const size_t oracle = OracleLowerBound(data, key);
      EXPECT_EQ(InterpolationLowerBoundWindowed(data.data(), n, key,
                                                advance),
                oracle)
          << "interpolation n=" << n << " key=" << key;
      EXPECT_EQ(BinaryLowerBoundWindowed(data.data(), n, key, advance),
                oracle)
          << "binary n=" << n << " key=" << key;
      EXPECT_EQ(LinearLowerBoundWindowed(data.data(), n, key, advance),
                oracle)
          << "linear n=" << n << " key=" << key;
      EXPECT_EQ(simd::LowerBoundWindowed(data.data(), n, key, advance,
                                         nullptr),
                oracle);
    }
  }
}

// ---------------------------------------------- histogram kernels

TEST_P(SimdKindSweep, RadixDigitHistogramMatchesScalar) {
  for (const size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{8},
                         size_t{100}, size_t{4097}}) {
    const auto data = SortedTuples(n, UINT64_MAX, n + 3);
    for (const uint32_t shift : {0u, 8u, 24u, 56u}) {
      std::vector<uint64_t> expected(256, 0), actual(256, 0);
      simd::RadixDigitHistogram(data.data(), n, shift, expected.data(),
                                simd::SimdKind::kScalar);
      simd::RadixDigitHistogram(data.data(), n, shift, actual.data(),
                                GetParam());
      EXPECT_EQ(actual, expected) << "n=" << n << " shift=" << shift;
    }
  }
}

TEST_P(SimdKindSweep, ClusterHistogramMatchesScalar) {
  for (const size_t n : {size_t{0}, size_t{9}, size_t{100}, size_t{4097}}) {
    const auto data = SortedTuples(n, uint64_t{1} << 40, n + 11);
    struct Mapping {
      uint64_t min_key;
      uint32_t shift;
      uint32_t clusters;
    };
    for (const Mapping& m :
         {Mapping{0, 32, 256}, Mapping{uint64_t{1} << 39, 20, 1024},
          Mapping{123, 0, 2}, Mapping{uint64_t{1} << 41, 8, 64}}) {
      std::vector<uint64_t> expected(m.clusters, 0), actual(m.clusters, 0);
      simd::ClusterHistogram(data.data(), n, m.min_key, m.shift, m.clusters,
                             expected.data(), simd::SimdKind::kScalar);
      simd::ClusterHistogram(data.data(), n, m.min_key, m.shift, m.clusters,
                             actual.data(), GetParam());
      EXPECT_EQ(actual, expected)
          << "n=" << n << " min=" << m.min_key << " shift=" << m.shift;
    }
  }
}

TEST_P(SimdKindSweep, ClusterDigitsMatchesScalar) {
  // The scatter-digit kernel must spill every tuple's cluster in
  // *source order* (the vectorized lanes are permuted internally);
  // equality against the scalar loop at odd sizes proves both the
  // mapping and the lane restoration.
  for (const size_t n : {size_t{0}, size_t{1}, size_t{9}, size_t{100},
                         size_t{4097}}) {
    const auto data = SortedTuples(n, uint64_t{1} << 40, n + 13);
    struct Mapping {
      uint64_t min_key;
      uint32_t shift;
      uint32_t clusters;
    };
    for (const Mapping& m :
         {Mapping{0, 32, 256}, Mapping{uint64_t{1} << 39, 20, 1024},
          Mapping{123, 0, 2}, Mapping{uint64_t{1} << 41, 8, 64}}) {
      std::vector<uint32_t> expected(n), actual(n);
      simd::ClusterDigits(data.data(), n, m.min_key, m.shift, m.clusters,
                          expected.data(), simd::SimdKind::kScalar);
      simd::ClusterDigits(data.data(), n, m.min_key, m.shift, m.clusters,
                          actual.data(), GetParam());
      EXPECT_EQ(actual, expected)
          << "n=" << n << " min=" << m.min_key << " shift=" << m.shift;
    }
  }
}

TEST_P(SimdKindSweep, HashDigitHistogramMatchesScalar) {
  for (const size_t n : {size_t{0}, size_t{15}, size_t{1000}}) {
    const auto data = SortedTuples(n, UINT64_MAX, n + 17);
    for (const uint32_t offset : {0u, 11u}) {
      for (const uint32_t bits : {1u, 8u, 16u}) {
        const size_t buckets = size_t{1} << bits;
        std::vector<uint64_t> expected(buckets, 0), actual(buckets, 0);
        simd::HashDigitHistogram(data.data(), n, baseline::kHashMultiplier,
                                 offset, bits, expected.data(),
                                 simd::SimdKind::kScalar);
        simd::HashDigitHistogram(data.data(), n, baseline::kHashMultiplier,
                                 offset, bits, actual.data(), GetParam());
        EXPECT_EQ(actual, expected)
            << "n=" << n << " offset=" << offset << " bits=" << bits;
      }
    }
  }
}

TEST_P(SimdKindSweep, KeyMinMaxMatchesScalar) {
  for (const size_t n : {size_t{1}, size_t{7}, size_t{16}, size_t{4097}}) {
    const auto data = SortedTuples(n, UINT64_MAX, n + 23);
    uint64_t expected_min = 0, expected_max = 0, min_key = 0, max_key = 0;
    simd::KeyMinMax(data.data(), n, &expected_min, &expected_max,
                    simd::SimdKind::kScalar);
    simd::KeyMinMax(data.data(), n, &min_key, &max_key, GetParam());
    EXPECT_EQ(min_key, expected_min) << "n=" << n;
    EXPECT_EQ(max_key, expected_max) << "n=" << n;
  }
}

TEST_P(SimdKindSweep, MsdRadixPartitionAgreesAcrossKinds) {
  auto data = SortedTuples(5000, UINT64_MAX, 31);
  std::shuffle(data.begin(), data.end(), std::mt19937{99});
  auto scalar_copy = data;
  const auto scalar_bounds =
      sort::MsdRadixPartition(scalar_copy.data(), scalar_copy.size(), 56,
                              simd::SimdKind::kScalar);
  auto simd_copy = data;
  const auto simd_bounds = sort::MsdRadixPartition(
      simd_copy.data(), simd_copy.size(), 56, GetParam());
  EXPECT_EQ(simd_bounds, scalar_bounds);
}

// --------------------------------- engine matrix: scalar vs auto A/B

TEST(SimdEngineTest, ScalarAndAutoProduceIdenticalJoinsAcrossMatrix) {
  const auto topology = numa::Topology::Simulated(4, 8);
  constexpr uint32_t kWorkers = 4;
  workload::DatasetSpec spec;
  spec.r_tuples = 6000;
  spec.multiplicity = 1.5;
  spec.key_domain = 15000;
  spec.s_mode = workload::SKeyMode::kIndependent;
  spec.seed = 321;
  const auto dataset = workload::Generate(topology, kWorkers, spec);

  for (const engine::Algorithm algorithm :
       {engine::Algorithm::kPMpsm, engine::Algorithm::kBMpsm,
        engine::Algorithm::kDMpsm, engine::Algorithm::kRadix,
        engine::Algorithm::kWisconsin}) {
    for (const JoinKind kind :
         {JoinKind::kInner, JoinKind::kLeftSemi, JoinKind::kLeftAnti,
          JoinKind::kLeftOuter}) {
      if (!engine::SupportsKind(algorithm, kind)) continue;

      uint64_t counts[2] = {0, 0};
      int slot = 0;
      for (const simd::SimdKind simd_kind :
           {simd::SimdKind::kScalar, simd::SimdKind::kAuto}) {
        engine::EngineOptions options;
        options.workers = kWorkers;
        options.simd = simd_kind;
        engine::Engine engine(topology, options);
        CountFactory consumer(kWorkers);
        engine::JoinSpec join;
        join.r = &dataset.r;
        join.s = &dataset.s;
        join.kind = kind;
        join.consumers = &consumer;
        join.algorithm = algorithm;
        auto report = engine.Execute(join);
        ASSERT_TRUE(report.ok()) << report.status().ToString();
        counts[slot++] = consumer.Result();
        EXPECT_EQ(report->simd_used,
                  simd::Resolve(engine::PlanSimdKnob(report->plan)));
        if (simd_kind == simd::SimdKind::kScalar &&
            algorithm != engine::Algorithm::kWisconsin) {
          EXPECT_EQ(report->simd_used, simd::SimdKind::kScalar);
        }
      }
      EXPECT_EQ(counts[0], counts[1])
          << engine::AlgorithmName(algorithm) << " " << JoinKindName(kind);

      CountFactory reference(1);
      const uint64_t expected = baseline::ReferenceJoin(
          dataset.r.ToVector(), dataset.s.ToVector(), kind,
          reference.ConsumerForWorker(0));
      EXPECT_EQ(counts[0], expected)
          << engine::AlgorithmName(algorithm) << " " << JoinKindName(kind);
    }
  }
}

TEST(SimdEngineTest, ScatterDigitKnobIsAnIdentityAB) {
  // simd_scatter_digits only swaps how phase 2.3 computes each tuple's
  // partition digit (precomputed vector stream vs fused scalar lookup);
  // the scatter itself is identical, so the join must be too.
  const auto topology = numa::Topology::Simulated(2, 4);
  constexpr uint32_t kWorkers = 4;
  workload::DatasetSpec spec;
  spec.r_tuples = 8000;
  spec.multiplicity = 1.5;
  spec.key_domain = 32000;
  spec.s_mode = workload::SKeyMode::kIndependent;
  spec.seed = 77;
  const auto dataset = workload::Generate(topology, kWorkers, spec);

  uint64_t counts[2] = {0, 0};
  int slot = 0;
  for (const bool precompute : {false, true}) {
    engine::EngineOptions options;
    options.workers = kWorkers;
    options.simd = simd::SimdKind::kAuto;
    options.mpsm.simd_scatter_digits = precompute;
    engine::Engine engine(topology, options);
    CountFactory consumer(kWorkers);
    engine::JoinSpec join;
    join.r = &dataset.r;
    join.s = &dataset.s;
    join.consumers = &consumer;
    join.algorithm = engine::Algorithm::kPMpsm;
    auto report = engine.Execute(join);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->plan.mpsm.simd_scatter_digits, precompute);
    counts[slot++] = consumer.Result();
  }
  EXPECT_EQ(counts[0], counts[1]);

  CountFactory reference(1);
  EXPECT_EQ(counts[0],
            baseline::ReferenceJoin(dataset.r.ToVector(), dataset.s.ToVector(),
                                    JoinKind::kInner,
                                    reference.ConsumerForWorker(0)));
}

TEST(SimdEngineTest, UnsupportedForcedKindStillExecutes) {
  // Forcing the widest kind must never fault: resolution degrades to
  // what the host can run (the off-x86 CI safety net).
  const auto topology = numa::Topology::Simulated(2, 4);
  workload::DatasetSpec spec;
  spec.r_tuples = 4000;
  spec.multiplicity = 2.0;
  spec.seed = 8;
  const auto dataset = workload::Generate(topology, 4, spec);

  engine::EngineOptions options;
  options.workers = 4;
  options.simd = simd::SimdKind::kAvx512;
  engine::Engine engine(topology, options);
  CountFactory consumer(4);
  engine::JoinSpec join;
  join.r = &dataset.r;
  join.s = &dataset.s;
  join.consumers = &consumer;
  join.algorithm = engine::Algorithm::kPMpsm;
  auto report = engine.Execute(join);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  CountFactory reference(1);
  const uint64_t expected = baseline::ReferenceJoin(
      dataset.r.ToVector(), dataset.s.ToVector(), JoinKind::kInner,
      reference.ConsumerForWorker(0));
  EXPECT_EQ(consumer.Result(), expected);
}

TEST(SimdEngineTest, PlanSurfacesTheResolvedKind) {
  const auto topology = numa::Topology::Simulated(4, 8);
  workload::DatasetSpec spec;
  spec.r_tuples = 1u << 16;
  spec.multiplicity = 2.0;
  spec.seed = 7;
  const auto dataset = workload::Generate(topology, 8, spec);

  engine::EngineOptions options;
  options.workers = 8;
  options.simd = simd::SimdKind::kScalar;
  engine::Engine engine(topology, options);
  engine::JoinSpec join;
  join.r = &dataset.r;
  join.s = &dataset.s;
  auto plan = engine.Plan(join);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(engine::PlanSimdKnob(*plan), simd::SimdKind::kScalar);
  EXPECT_NE(plan->ToString().find("simd: scalar"), std::string::npos)
      << plan->ToString();
}

TEST(SimdPlannerTest, WiderKindsPriceThePhase4MergeCheaper) {
  engine::PlannerInputs in;
  in.r_tuples = uint64_t{1} << 24;
  in.s_tuples = uint64_t{1} << 26;
  in.team_size = 32;
  in.numa_nodes = 4;
  const auto machine = sim::MachineModel::HyPer1();
  const disk::DMpsmOptions dmpsm;

  MpsmOptions scalar_options;
  scalar_options.simd = simd::SimdKind::kScalar;
  MpsmOptions wide_options;
  // Resolve() may degrade on the host, so compare scalar against the
  // widest kind the host actually has.
  wide_options.simd = simd::Resolve(simd::SimdKind::kAuto);

  const auto scalar_cost = engine::Planner::EstimateCost(
      engine::Algorithm::kPMpsm, in, machine, scalar_options, dmpsm);
  const auto wide_cost = engine::Planner::EstimateCost(
      engine::Algorithm::kPMpsm, in, machine, wide_options, dmpsm);
  if (wide_options.simd == simd::SimdKind::kScalar) {
    EXPECT_DOUBLE_EQ(wide_cost.phase_seconds[kPhaseJoin],
                     scalar_cost.phase_seconds[kPhaseJoin]);
  } else {
    EXPECT_LT(wide_cost.phase_seconds[kPhaseJoin],
              scalar_cost.phase_seconds[kPhaseJoin]);
    // Phases without a merge loop are untouched by the knob.
    EXPECT_DOUBLE_EQ(wide_cost.phase_seconds[kPhaseSortPublic],
                     scalar_cost.phase_seconds[kPhaseSortPublic]);
  }
}

}  // namespace
}  // namespace mpsm

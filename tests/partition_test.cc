// Partition machinery: key normalizer, radix histograms, prefix-sum
// scatter plans, equi-height histograms, the merged CDF, and the
// cost-balanced splitter computation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include "partition/cdf.h"
#include "partition/equi_height.h"
#include "partition/key_normalizer.h"
#include "partition/prefix_scatter.h"
#include "partition/radix_histogram.h"
#include "partition/splitters.h"
#include "sort/radix_introsort.h"
#include "util/rng.h"

namespace mpsm {
namespace {

// ---------------------------------------------------- key normalizer

TEST(KeyNormalizerTest, FullDomainTopBits) {
  KeyNormalizer norm(0, (uint64_t{1} << 32) - 1, 8);
  EXPECT_EQ(norm.num_clusters(), 256u);
  EXPECT_EQ(norm.Cluster(0), 0u);
  EXPECT_EQ(norm.Cluster((uint64_t{1} << 32) - 1), 255u);
  EXPECT_EQ(norm.Cluster(uint64_t{1} << 31), 128u);
}

TEST(KeyNormalizerTest, OffsetDomain) {
  KeyNormalizer norm(1000, 1000 + 1023, 2);
  EXPECT_EQ(norm.Cluster(1000), 0u);
  EXPECT_EQ(norm.Cluster(1255), 0u);
  EXPECT_EQ(norm.Cluster(1256), 1u);
  EXPECT_EQ(norm.Cluster(2023), 3u);
}

TEST(KeyNormalizerTest, ClampsOutOfRangeKeys) {
  KeyNormalizer norm(100, 200, 3);
  EXPECT_EQ(norm.Cluster(0), 0u);
  EXPECT_EQ(norm.Cluster(99), 0u);
  EXPECT_EQ(norm.Cluster(5000), norm.num_clusters() - 1);
}

TEST(KeyNormalizerTest, DegenerateSingleKeyDomain) {
  KeyNormalizer norm(77, 77, 4);
  EXPECT_EQ(norm.Cluster(77), 0u);
  // Out-of-range keys still map to a valid cluster index.
  EXPECT_LT(norm.Cluster(78), norm.num_clusters());
  EXPECT_EQ(norm.Cluster(100000), norm.num_clusters() - 1);
}

TEST(KeyNormalizerTest, ClusterBoundsRoundTrip) {
  KeyNormalizer norm(0, (uint64_t{1} << 20) - 1, 6);
  for (uint32_t c = 0; c < norm.num_clusters(); ++c) {
    EXPECT_EQ(norm.Cluster(norm.ClusterLowKey(c)), c);
    EXPECT_LT(norm.ClusterLowKey(c), norm.ClusterHighKey(c));
    if (c + 1 < norm.num_clusters()) {
      EXPECT_EQ(norm.ClusterHighKey(c), norm.ClusterLowKey(c + 1));
    }
  }
}

TEST(KeyNormalizerTest, ClusterIsMonotoneInKey) {
  KeyNormalizer norm(500, 100000, 7);
  Xoshiro256 rng(3);
  uint64_t previous_key = 0;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t key = previous_key + rng.NextBounded(500);
    EXPECT_GE(norm.Cluster(key), norm.Cluster(previous_key));
    previous_key = key;
  }
}

// -------------------------------------------------- radix histograms

TEST(RadixHistogramTest, CountsEveryTuple) {
  Xoshiro256 rng(5);
  std::vector<Tuple> data(10000);
  for (auto& t : data) t = Tuple{rng.NextBounded(1u << 20), 0};
  KeyNormalizer norm(0, (1u << 20) - 1, 8);
  const auto histogram = BuildRadixHistogram(data.data(), data.size(), norm);
  EXPECT_EQ(histogram.size(), 256u);
  EXPECT_EQ(HistogramTotal(histogram), data.size());

  // Spot-check: recount cluster of each tuple.
  RadixHistogram recount(256, 0);
  for (const auto& t : data) ++recount[norm.Cluster(t.key)];
  EXPECT_EQ(histogram, recount);
}

TEST(RadixHistogramTest, CombineSums) {
  RadixHistogram a = {1, 2, 3};
  RadixHistogram b = {10, 0, 5};
  const auto combined = CombineHistograms({a, b});
  EXPECT_EQ(combined, (RadixHistogram{11, 2, 8}));
  EXPECT_TRUE(CombineHistograms({}).empty());
}

TEST(KeyRangeTest, ScanAndMerge) {
  std::vector<Tuple> data = {{5, 0}, {3, 0}, {9, 0}, {7, 0}};
  const auto range = ScanKeyRange(data.data(), data.size());
  EXPECT_EQ(range.min_key, 3u);
  EXPECT_EQ(range.max_key, 9u);

  const auto merged = MergeKeyRanges(range, KeyRange{1, 4});
  EXPECT_EQ(merged.min_key, 1u);
  EXPECT_EQ(merged.max_key, 9u);

  const auto empty = ScanKeyRange(nullptr, 0);
  EXPECT_EQ(empty.min_key, 0u);
  EXPECT_EQ(empty.max_key, 0u);
}

// ------------------------------------------------------ scatter plan

TEST(ScatterPlanTest, MatchesPaperFigure6Example) {
  // Figure 6: two workers, histograms h1 = (4,3), h2 = (3,4).
  // ps1 = (0,0); ps2 = (4,3); partition sizes (7,7).
  const auto plan = ComputeScatterPlan({{4, 3}, {3, 4}});
  EXPECT_EQ(plan.partition_sizes, (std::vector<uint64_t>{7, 7}));
  EXPECT_EQ(plan.start_offset[0], (std::vector<uint64_t>{0, 0}));
  EXPECT_EQ(plan.start_offset[1], (std::vector<uint64_t>{4, 3}));
}

TEST(ScatterPlanTest, RangesAreDisjointAndCovering) {
  Xoshiro256 rng(8);
  const uint32_t workers = 5, partitions = 7;
  std::vector<std::vector<uint64_t>> hist(workers,
                                          std::vector<uint64_t>(partitions));
  for (auto& h : hist) {
    for (auto& v : h) v = rng.NextBounded(50);
  }
  const auto plan = ComputeScatterPlan(hist);
  for (uint32_t p = 0; p < partitions; ++p) {
    uint64_t offset = 0;
    for (uint32_t w = 0; w < workers; ++w) {
      EXPECT_EQ(plan.start_offset[w][p], offset);
      offset += hist[w][p];
    }
    EXPECT_EQ(plan.partition_sizes[p], offset);
  }
}

TEST(ScatterChunkTest, ScattersToCorrectPartitions) {
  // 2 partitions by key parity; verify every tuple lands in the right
  // partition at the planned offsets.
  std::vector<Tuple> chunk;
  for (uint64_t i = 0; i < 100; ++i) chunk.push_back(Tuple{i, i});
  std::vector<uint64_t> hist(2, 0);
  for (const auto& t : chunk) ++hist[t.key & 1];

  std::vector<Tuple> even(hist[0]), odd(hist[1]);
  Tuple* dest[2] = {even.data(), odd.data()};
  std::vector<uint64_t> cursor = {0, 0};
  ScatterChunk(chunk.data(), chunk.size(),
               [](uint64_t key) { return static_cast<uint32_t>(key & 1); },
               dest, cursor.data());
  EXPECT_EQ(cursor[0], hist[0]);
  EXPECT_EQ(cursor[1], hist[1]);
  for (const auto& t : even) EXPECT_EQ(t.key & 1, 0u);
  for (const auto& t : odd) EXPECT_EQ(t.key & 1, 1u);
}

// ------------------------------------- write-combining scatter

// Runs the scalar and write-combining scatters over the same chunk and
// expects bit-identical partition arrays and final cursors. `dest`
// offsets come from a real per-worker plan so flush targets start at
// arbitrary (line-misaligned) positions.
template <typename PartitionOf>
void ExpectWcMatchesScalar(const std::vector<Tuple>& chunk,
                           uint32_t num_partitions,
                           const PartitionOf& partition_of,
                           uint64_t worker_start = 0) {
  std::vector<uint64_t> hist(num_partitions, 0);
  for (const auto& t : chunk) ++hist[partition_of(t.key)];

  // Layout: every partition gets `worker_start` tuples of headroom (a
  // previous worker's range) marked with a sentinel that must survive.
  const Tuple sentinel{~uint64_t{0}, ~uint64_t{0}};
  std::vector<std::vector<Tuple>> scalar_parts(num_partitions),
      wc_parts(num_partitions);
  std::vector<Tuple*> scalar_dest(num_partitions), wc_dest(num_partitions);
  for (uint32_t p = 0; p < num_partitions; ++p) {
    scalar_parts[p].assign(worker_start + hist[p], sentinel);
    wc_parts[p].assign(worker_start + hist[p], sentinel);
    scalar_dest[p] = scalar_parts[p].data();
    wc_dest[p] = wc_parts[p].data();
  }

  std::vector<uint64_t> scalar_cursor(num_partitions, worker_start);
  std::vector<uint64_t> wc_cursor(num_partitions, worker_start);
  ScatterChunk(chunk.data(), chunk.size(), partition_of, scalar_dest.data(),
               scalar_cursor.data());
  ScatterChunkWriteCombining(chunk.data(), chunk.size(), partition_of,
                             wc_dest.data(), wc_cursor.data(),
                             num_partitions);

  EXPECT_EQ(scalar_cursor, wc_cursor);
  for (uint32_t p = 0; p < num_partitions; ++p) {
    EXPECT_EQ(scalar_parts[p], wc_parts[p]) << "partition " << p;
  }
}

TEST(WriteCombiningScatterTest, MatchesScalarOnRandomChunk) {
  Xoshiro256 rng(31);
  // Chunk size is deliberately not a multiple of kWcBufferTuples, so
  // every partition ends on a partial-buffer drain.
  std::vector<Tuple> chunk(100003);
  for (uint64_t i = 0; i < chunk.size(); ++i) {
    chunk[i] = Tuple{rng.NextBounded(1 << 20), i};
  }
  ExpectWcMatchesScalar(chunk, 13,
                        [](uint64_t key) {
                          return static_cast<uint32_t>(key % 13);
                        });
}

TEST(WriteCombiningScatterTest, MisalignedStartOffsets) {
  // Start cursors 1..7 exercise the scalar head fix-up before the
  // flushes become line-aligned.
  Xoshiro256 rng(37);
  std::vector<Tuple> chunk(4096 + 9);
  for (uint64_t i = 0; i < chunk.size(); ++i) {
    chunk[i] = Tuple{rng.Next(), i};
  }
  for (uint64_t start : {1u, 2u, 3u, 5u, 7u}) {
    ExpectWcMatchesScalar(chunk, 8,
                          [](uint64_t key) {
                            return static_cast<uint32_t>(key & 7);
                          },
                          start);
  }
}

TEST(WriteCombiningScatterTest, EmptyPartitionsStayUntouched) {
  // Keys map onto 3 of 11 partitions; the other 8 must see no writes.
  std::vector<Tuple> chunk;
  for (uint64_t i = 0; i < 1000; ++i) chunk.push_back(Tuple{i % 3, i});
  ExpectWcMatchesScalar(chunk, 11, [](uint64_t key) {
    return static_cast<uint32_t>(key);  // only 0, 1, 2 occur
  });
}

TEST(WriteCombiningScatterTest, ExternalStagedBuffersMatchLocal) {
  // Caller-owned staging buffers (the NUMA destination-homed path of
  // P-MPSM) must behave exactly like the worker-local allocation —
  // including reuse across calls without any reset in between.
  Xoshiro256 rng(51);
  std::vector<Tuple> chunk(30011);
  for (uint64_t i = 0; i < chunk.size(); ++i) {
    chunk[i] = Tuple{rng.NextBounded(1 << 16), i};
  }
  const uint32_t num_partitions = 9;
  const auto partition_of = [](uint64_t key) {
    return static_cast<uint32_t>(key % 9);
  };
  std::vector<uint64_t> hist(num_partitions, 0);
  for (const auto& t : chunk) ++hist[partition_of(t.key)];

  auto storage =
      std::make_unique<internal::WcBuffer[]>(num_partitions);
  std::vector<internal::WcBuffer*> staged(num_partitions);
  for (uint32_t p = 0; p < num_partitions; ++p) staged[p] = &storage[p];

  for (int round = 0; round < 2; ++round) {  // reuse across calls
    std::vector<std::vector<Tuple>> local_parts(num_partitions),
        staged_parts(num_partitions);
    std::vector<Tuple*> local_dest(num_partitions),
        staged_dest(num_partitions);
    for (uint32_t p = 0; p < num_partitions; ++p) {
      local_parts[p].resize(hist[p]);
      staged_parts[p].resize(hist[p]);
      local_dest[p] = local_parts[p].data();
      staged_dest[p] = staged_parts[p].data();
    }
    std::vector<uint64_t> local_cursor(num_partitions, 0),
        staged_cursor(num_partitions, 0);
    ScatterChunkWriteCombining(chunk.data(), chunk.size(), partition_of,
                               local_dest.data(), local_cursor.data(),
                               num_partitions);
    ScatterChunkWriteCombining(chunk.data(), chunk.size(), partition_of,
                               staged_dest.data(), staged_cursor.data(),
                               num_partitions, staged.data());
    EXPECT_EQ(staged_cursor, local_cursor);
    for (uint32_t p = 0; p < num_partitions; ++p) {
      EXPECT_EQ(staged_parts[p], local_parts[p])
          << "round " << round << " partition " << p;
    }
  }
}

TEST(WriteCombiningScatterTest, SinglePartitionDegenerates) {
  std::vector<Tuple> chunk;
  for (uint64_t i = 0; i < 777; ++i) chunk.push_back(Tuple{i, i});
  ExpectWcMatchesScalar(chunk, 1, [](uint64_t) { return 0u; });
}

TEST(WriteCombiningScatterTest, ChunksSmallerThanBuffer) {
  for (size_t n : {0u, 1u, 2u, 7u,
                   static_cast<unsigned>(kWcBufferTuples) - 1,
                   static_cast<unsigned>(kWcBufferTuples),
                   static_cast<unsigned>(kWcBufferTuples) + 1}) {
    std::vector<Tuple> chunk;
    for (uint64_t i = 0; i < n; ++i) chunk.push_back(Tuple{i, i});
    ExpectWcMatchesScalar(chunk, 4, [](uint64_t key) {
      return static_cast<uint32_t>(key & 3);
    });
  }
}

TEST(ScatterPlanValidationTest, AcceptsComputedPlans) {
  Xoshiro256 rng(19);
  std::vector<std::vector<uint64_t>> hist(6, std::vector<uint64_t>(9));
  for (auto& h : hist) {
    for (auto& v : h) v = rng.NextBounded(100);
  }
  const auto plan = ComputeScatterPlan(hist);
  EXPECT_TRUE(ScatterPlanIsConsistent(plan, hist));
}

TEST(ScatterPlanValidationTest, RejectsTamperedPlans) {
  const std::vector<std::vector<uint64_t>> hist = {{4, 3}, {3, 4}};
  const auto good = ComputeScatterPlan(hist);

  auto overlapping = good;
  overlapping.start_offset[1][0] = 3;  // overlaps worker 0's [0, 4)
  EXPECT_FALSE(ScatterPlanIsConsistent(overlapping, hist));

  auto wrong_size = good;
  wrong_size.partition_sizes[1] = 8;  // histograms say 7
  EXPECT_FALSE(ScatterPlanIsConsistent(wrong_size, hist));

  auto missing_worker = good;
  missing_worker.start_offset.pop_back();
  EXPECT_FALSE(ScatterPlanIsConsistent(missing_worker, hist));

  // Histograms that disagree with the plan's shape.
  EXPECT_FALSE(ScatterPlanIsConsistent(good, {{4, 3, 0}, {3, 4, 0}}));
}

// ------------------------------------- morsel-sliced scatter blocks

TEST(ScatterBlockValidationTest, AcceptsExactTilings) {
  // Chunk 0 sliced into three blocks, chunk 1 into one, chunk 2 empty
  // with the canonical single empty block.
  const std::vector<ScatterBlock> blocks = {
      {0, 0, 10}, {0, 10, 20}, {0, 20, 25}, {1, 0, 7}, {2, 0, 0}};
  EXPECT_TRUE(ScatterBlocksTileChunks(blocks, {25, 7, 0}));
}

TEST(ScatterBlockValidationTest, RejectsGapsOverlapsAndStrays) {
  // Gap: chunk 0 misses [10, 12).
  EXPECT_FALSE(
      ScatterBlocksTileChunks({{0, 0, 10}, {0, 12, 25}}, {25}));
  // Overlap: [8, 10) scattered twice.
  EXPECT_FALSE(
      ScatterBlocksTileChunks({{0, 0, 10}, {0, 8, 25}}, {25}));
  // Tail not covered.
  EXPECT_FALSE(ScatterBlocksTileChunks({{0, 0, 20}}, {25}));
  // Uncovered chunk.
  EXPECT_FALSE(ScatterBlocksTileChunks({{0, 0, 25}}, {25, 7}));
  // Stray chunk id.
  EXPECT_FALSE(ScatterBlocksTileChunks({{1, 0, 25}}, {25}));
  // Inverted range.
  EXPECT_FALSE(ScatterBlocksTileChunks({{0, 10, 5}}, {25}));
}

// ------------------------------------------------ auto scatter kind

TEST(ScatterKindTest, AutoResolvesAtFanoutCrossover) {
  // Below the ~100-partition crossover: scalar.
  EXPECT_EQ(ResolveScatterKind(ScatterKind::kAuto, 1 << 20, 32),
            ScatterKind::kScalar);
  // At/above it with enough tuples: write combining.
  EXPECT_EQ(ResolveScatterKind(ScatterKind::kAuto, 1 << 20, 512),
            ScatterKind::kWriteCombining);
  EXPECT_EQ(ResolveScatterKind(ScatterKind::kAuto, 1 << 20,
                               kScatterAutoFanoutCrossover),
            ScatterKind::kWriteCombining);
  // Big fan-out but fewer tuples than partitions: staging buffers
  // cannot fill, scalar wins.
  EXPECT_EQ(ResolveScatterKind(ScatterKind::kAuto, 64, 2048),
            ScatterKind::kScalar);
  // Explicit kinds pass through untouched.
  EXPECT_EQ(ResolveScatterKind(ScatterKind::kScalar, 1 << 20, 512),
            ScatterKind::kScalar);
  EXPECT_EQ(ResolveScatterKind(ScatterKind::kWriteCombining, 64, 8),
            ScatterKind::kWriteCombining);
  EXPECT_STREQ(ScatterKindName(ScatterKind::kAuto), "auto");
}

// ----------------------------------------------- equi-height + CDF

std::vector<Tuple> SortedTuples(size_t n, uint64_t seed, uint64_t domain) {
  Xoshiro256 rng(seed);
  std::vector<Tuple> data(n);
  for (auto& t : data) t = Tuple{rng.NextBounded(domain), 0};
  sort::RadixIntroSort(data.data(), n);
  return data;
}

TEST(EquiHeightTest, BoundsAreRunKeysAndMonotone) {
  auto tuples = SortedTuples(10000, 2, 1 << 20);
  ::mpsm::Run run{tuples.data(), tuples.size(), 0};
  const auto histogram = BuildEquiHeightHistogram(run, 16);
  EXPECT_EQ(histogram.run_size, run.size);
  ASSERT_EQ(histogram.bounds.size(), 16u);
  EXPECT_TRUE(std::is_sorted(histogram.bounds.begin(),
                             histogram.bounds.end()));
  EXPECT_EQ(histogram.bounds.back(), run.MaxKey());
}

TEST(EquiHeightTest, BucketsHoldEqualCounts) {
  auto tuples = SortedTuples(64000, 4, 1u << 30);
  ::mpsm::Run run{tuples.data(), tuples.size(), 0};
  const uint32_t k = 8;
  const auto histogram = BuildEquiHeightHistogram(run, k);
  // Count tuples <= each bound: must be ~ (j+1)*n/k.
  for (uint32_t j = 0; j < k; ++j) {
    const auto count = std::upper_bound(
                           tuples.begin(), tuples.end(),
                           Tuple{histogram.bounds[j], 0}, TupleKeyLess{}) -
                       tuples.begin();
    EXPECT_NEAR(static_cast<double>(count),
                static_cast<double>(run.size) * (j + 1) / k,
                static_cast<double>(run.size) * 0.02);
  }
}

TEST(EquiHeightTest, EmptyRun) {
  ::mpsm::Run run{nullptr, 0, 0};
  const auto histogram = BuildEquiHeightHistogram(run, 4);
  EXPECT_TRUE(histogram.bounds.empty());
  EXPECT_EQ(histogram.run_size, 0u);
}

TEST(CdfTest, TotalAndMonotonicity) {
  std::vector<EquiHeightHistogram> locals;
  for (uint64_t seed = 0; seed < 4; ++seed) {
    auto tuples = SortedTuples(5000 + 100 * seed, seed, 1 << 16);
    ::mpsm::Run run{tuples.data(), tuples.size(), 0};
    locals.push_back(BuildEquiHeightHistogram(run, 12));
  }
  const Cdf cdf = Cdf::FromHistograms(locals);
  EXPECT_EQ(cdf.total(), 5000u + 5100 + 5200 + 5300);

  double previous = -1;
  for (uint64_t key = 0; key < (1 << 16); key += 997) {
    const double rank = cdf.EstimateRank(key);
    EXPECT_GE(rank, previous);
    EXPECT_GE(rank, 0.0);
    EXPECT_LE(rank, static_cast<double>(cdf.total()));
    previous = rank;
  }
  EXPECT_DOUBLE_EQ(cdf.EstimateRank(1 << 16), cdf.total());
}

TEST(CdfTest, EstimatesTrueRankOnUniformData) {
  auto tuples = SortedTuples(100000, 9, 1u << 24);
  ::mpsm::Run run{tuples.data(), tuples.size(), 0};
  const Cdf cdf =
      Cdf::FromHistograms({BuildEquiHeightHistogram(run, 64)});
  for (uint64_t key = 0; key < (1u << 24); key += (1u << 20) + 7777) {
    const auto true_rank =
        std::upper_bound(tuples.begin(), tuples.end(), Tuple{key, 0},
                         TupleKeyLess{}) -
        tuples.begin();
    EXPECT_NEAR(cdf.EstimateRank(key), static_cast<double>(true_rank),
                0.03 * static_cast<double>(run.size));
  }
}

TEST(CdfTest, SkewedDataStillAccurate) {
  // Figure 8 scenario: mostly small keys.
  Xoshiro256 rng(12);
  std::vector<Tuple> tuples(50000);
  for (auto& t : tuples) {
    t = Tuple{rng.NextDouble() < 0.8 ? rng.NextBounded(1000)
                                     : rng.NextBounded(100000),
              0};
  }
  sort::RadixIntroSort(tuples.data(), tuples.size());
  ::mpsm::Run run{tuples.data(), tuples.size(), 0};
  const Cdf cdf =
      Cdf::FromHistograms({BuildEquiHeightHistogram(run, 128)});
  for (uint64_t key : {10u, 100u, 500u, 999u, 5000u, 50000u, 99999u}) {
    const auto true_rank =
        std::upper_bound(tuples.begin(), tuples.end(), Tuple{key, 0},
                         TupleKeyLess{}) -
        tuples.begin();
    EXPECT_NEAR(cdf.EstimateRank(key), static_cast<double>(true_rank),
                0.03 * static_cast<double>(run.size))
        << "key " << key;
  }
}

TEST(CdfTest, EstimateRangeSplitsRank) {
  auto tuples = SortedTuples(20000, 21, 1 << 20);
  ::mpsm::Run run{tuples.data(), tuples.size(), 0};
  const Cdf cdf =
      Cdf::FromHistograms({BuildEquiHeightHistogram(run, 32)});
  const double total = cdf.EstimateRange(0, uint64_t{1} << 21);
  EXPECT_NEAR(total, static_cast<double>(run.size), 1.0);
  const double left = cdf.EstimateRange(0, 1 << 19);
  const double right = cdf.EstimateRange(1 << 19, uint64_t{1} << 21);
  EXPECT_NEAR(left + right, total, 1.0);
  EXPECT_EQ(cdf.EstimateRange(500, 500), 0.0);
}

TEST(CdfTest, EmptyHistogramsYieldZero) {
  const Cdf cdf = Cdf::FromHistograms({});
  EXPECT_EQ(cdf.total(), 0u);
  EXPECT_EQ(cdf.EstimateRank(123), 0.0);
}

// ---------------------------------------------------------- splitters

TEST(SplittersTest, UniformHistogramSplitsEvenly) {
  RadixHistogram hist(64, 100);  // 6400 tuples, uniform
  const auto splitters =
      ComputeSplitters(hist, {}, 4, MakeEquiHeightRCost());
  ASSERT_EQ(splitters.cluster_to_partition.size(), 64u);
  EXPECT_TRUE(std::is_sorted(splitters.cluster_to_partition.begin(),
                             splitters.cluster_to_partition.end()));
  for (uint32_t p = 0; p < 4; ++p) {
    EXPECT_EQ(splitters.partition_r_sizes[p], 1600u);
  }
}

TEST(SplittersTest, SkewedHistogramBalancesCardinality) {
  // One hot cluster amid a cold tail.
  RadixHistogram hist(128, 10);
  hist[3] = 5000;
  const auto splitters =
      ComputeSplitters(hist, {}, 4, MakeEquiHeightRCost());
  const uint64_t max_size = *std::max_element(
      splitters.partition_r_sizes.begin(), splitters.partition_r_sizes.end());
  // The hot cluster is indivisible; optimum bottleneck == its partition.
  EXPECT_LE(max_size, 5000u + 10 * 128);
  EXPECT_GE(max_size, 5000u);
}

TEST(SplittersTest, CostBalancedUsesSEstimates) {
  // R uniform but S concentrated in the low clusters: cost-balanced
  // splitters must make low-key partitions narrower in R terms... i.e.
  // the high-S partitions get fewer R clusters than a pure R split.
  const uint32_t clusters = 64;
  RadixHistogram r_hist(clusters, 100);
  std::vector<double> s_est(clusters, 10.0);
  for (uint32_t c = 0; c < 8; ++c) s_est[c] = 10000.0;

  const uint32_t team = 4;
  const auto balanced =
      ComputeSplitters(r_hist, s_est, team, MakePMpsmCost(team));
  const auto equi_r =
      ComputeSplitters(r_hist, {}, team, MakeEquiHeightRCost());

  auto bottleneck = [&](const Splitters& sp) {
    double worst = 0;
    const auto cost = MakePMpsmCost(team);
    std::vector<uint64_t> r(team, 0);
    std::vector<double> s(team, 0);
    for (uint32_t c = 0; c < clusters; ++c) {
      r[sp.cluster_to_partition[c]] += r_hist[c];
      s[sp.cluster_to_partition[c]] += s_est[c];
    }
    for (uint32_t p = 0; p < team; ++p) worst = std::max(worst, cost(r[p], s[p]));
    return worst;
  };
  EXPECT_LE(bottleneck(balanced), bottleneck(equi_r));
  // With this skew the cost-balanced split is strictly better.
  EXPECT_LT(bottleneck(balanced), 0.999 * bottleneck(equi_r));
}

TEST(SplittersTest, NeverExceedsPartitionBudget) {
  Xoshiro256 rng(44);
  for (int trial = 0; trial < 20; ++trial) {
    const uint32_t clusters = 1u << (3 + rng.NextBounded(6));
    const uint32_t team = 1 + static_cast<uint32_t>(rng.NextBounded(16));
    RadixHistogram hist(clusters);
    for (auto& h : hist) h = rng.NextBounded(1000);
    const auto splitters =
        ComputeSplitters(hist, {}, team, MakePMpsmCost(team));
    for (uint32_t c = 0; c < clusters; ++c) {
      EXPECT_LT(splitters.cluster_to_partition[c], team);
    }
    EXPECT_TRUE(std::is_sorted(splitters.cluster_to_partition.begin(),
                               splitters.cluster_to_partition.end()));
    // All tuples accounted for.
    EXPECT_EQ(std::accumulate(splitters.partition_r_sizes.begin(),
                              splitters.partition_r_sizes.end(),
                              uint64_t{0}),
              HistogramTotal(hist));
  }
}

TEST(SplittersTest, FinerHistogramsNeverWorsenBalance) {
  // Figure 9's point: higher B gives the splitter more freedom, so the
  // achieved bottleneck cost is non-increasing in B.
  Xoshiro256 rng(7);
  std::vector<uint64_t> keys(20000);
  for (auto& k : keys) {
    k = rng.NextDouble() < 0.8 ? rng.NextBounded(1 << 14)
                               : rng.NextBounded(1 << 26);
  }
  const uint32_t team = 8;
  double previous_bottleneck = 1e300;
  for (uint32_t bits = 3; bits <= 11; ++bits) {
    KeyNormalizer norm(0, (1 << 26) - 1, bits);
    RadixHistogram hist(norm.num_clusters(), 0);
    for (uint64_t k : keys) ++hist[norm.Cluster(k)];
    const auto splitters =
        ComputeSplitters(hist, {}, team, MakePMpsmCost(team));
    const double bottleneck = *std::max_element(
        splitters.partition_costs.begin(), splitters.partition_costs.end());
    EXPECT_LE(bottleneck, previous_bottleneck * 1.0001);
    previous_bottleneck = bottleneck;
  }
}

TEST(SplittersTest, SinglePartitionTakesEverything) {
  RadixHistogram hist = {5, 10, 0, 3};
  const auto splitters = ComputeSplitters(hist, {}, 1, MakePMpsmCost(1));
  for (uint32_t c = 0; c < 4; ++c) {
    EXPECT_EQ(splitters.cluster_to_partition[c], 0u);
  }
  EXPECT_EQ(splitters.partition_r_sizes[0], 18u);
}

TEST(SplittersTest, EmptyHistogram) {
  const auto splitters = ComputeSplitters({}, {}, 4, MakePMpsmCost(4));
  EXPECT_TRUE(splitters.cluster_to_partition.empty());
  EXPECT_EQ(splitters.num_partitions, 4u);
}

TEST(EstimateClusterSTest, SumsToTotal) {
  auto tuples = SortedTuples(30000, 3, 1 << 22);
  ::mpsm::Run run{tuples.data(), tuples.size(), 0};
  const Cdf cdf =
      Cdf::FromHistograms({BuildEquiHeightHistogram(run, 64)});
  KeyNormalizer norm(0, (1 << 22) - 1, 8);
  const auto estimates = EstimateClusterS(norm, cdf);
  const double sum =
      std::accumulate(estimates.begin(), estimates.end(), 0.0);
  EXPECT_NEAR(sum, static_cast<double>(cdf.total()),
              0.02 * static_cast<double>(cdf.total()));
}

}  // namespace
}  // namespace mpsm

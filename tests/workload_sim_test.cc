// Workload generators (§5.1 datasets) and the calibrated machine model.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/consumers.h"
#include "core/p_mpsm.h"
#include "numa/topology.h"
#include "sim/machine_model.h"
#include "workload/generator.h"
#include "workload/query.h"

namespace mpsm {
namespace {

using workload::Arrangement;
using workload::DatasetSpec;
using workload::KeyDistribution;
using workload::SKeyMode;

numa::Topology Topo() { return numa::Topology::Simulated(4, 8); }

// --------------------------------------------------------- generator

TEST(GeneratorTest, CardinalitiesMatchSpec) {
  DatasetSpec spec;
  spec.r_tuples = 1000;
  spec.multiplicity = 4.0;
  const auto dataset = workload::Generate(Topo(), 8, spec);
  EXPECT_EQ(dataset.r.size(), 1000u);
  EXPECT_EQ(dataset.s.size(), 4000u);
  EXPECT_EQ(dataset.r.num_chunks(), 8u);
  EXPECT_EQ(dataset.s.num_chunks(), 8u);
}

TEST(GeneratorTest, FractionalMultiplicity) {
  DatasetSpec spec;
  spec.r_tuples = 1000;
  spec.multiplicity = 0.25;
  const auto dataset = workload::Generate(Topo(), 4, spec);
  EXPECT_EQ(dataset.s.size(), 250u);
}

TEST(GeneratorTest, Deterministic) {
  DatasetSpec spec;
  spec.r_tuples = 500;
  spec.seed = 7;
  const auto a = workload::Generate(Topo(), 4, spec);
  const auto b = workload::Generate(Topo(), 4, spec);
  EXPECT_EQ(a.r.ToVector(), b.r.ToVector());
  EXPECT_EQ(a.s.ToVector(), b.s.ToVector());

  spec.seed = 8;
  const auto c = workload::Generate(Topo(), 4, spec);
  EXPECT_NE(a.r.ToVector(), c.r.ToVector());
}

TEST(GeneratorTest, KeysStayInDomain) {
  DatasetSpec spec;
  spec.r_tuples = 20000;
  spec.key_domain = 1 << 16;
  spec.s_mode = SKeyMode::kIndependent;
  for (auto dist : {KeyDistribution::kUniform, KeyDistribution::kSkewLowEnd,
                    KeyDistribution::kSkewHighEnd}) {
    spec.r_distribution = dist;
    const auto dataset = workload::Generate(Topo(), 4, spec);
    for (const auto& t : dataset.r.ToVector()) {
      EXPECT_LT(t.key, spec.key_domain);
    }
  }
}

TEST(GeneratorTest, SkewLowEndPutsEightyPercentInLowBand) {
  DatasetSpec spec;
  spec.r_tuples = 50000;
  spec.key_domain = 100000;
  spec.r_distribution = KeyDistribution::kSkewLowEnd;
  const auto dataset = workload::Generate(Topo(), 4, spec);
  size_t low = 0;
  for (const auto& t : dataset.r.ToVector()) low += (t.key < 20000);
  // The 20% tail draws from outside the band, so the band holds ~80%.
  EXPECT_NEAR(static_cast<double>(low) / dataset.r.size(), 0.8, 0.01);
}

TEST(GeneratorTest, SkewHighEndMirrors) {
  DatasetSpec spec;
  spec.r_tuples = 50000;
  spec.key_domain = 100000;
  spec.r_distribution = KeyDistribution::kSkewHighEnd;
  const auto dataset = workload::Generate(Topo(), 4, spec);
  size_t high = 0;
  for (const auto& t : dataset.r.ToVector()) high += (t.key >= 80000);
  EXPECT_NEAR(static_cast<double>(high) / dataset.r.size(), 0.8, 0.01);
}

TEST(GeneratorTest, ForeignKeySAlwaysJoins) {
  DatasetSpec spec;
  spec.r_tuples = 2000;
  spec.multiplicity = 3.0;
  spec.s_mode = SKeyMode::kForeignKey;
  const auto dataset = workload::Generate(Topo(), 4, spec);
  std::map<uint64_t, int> r_keys;
  for (const auto& t : dataset.r.ToVector()) r_keys[t.key] = 1;
  for (const auto& t : dataset.s.ToVector()) {
    EXPECT_TRUE(r_keys.count(t.key)) << t.key;
  }
}

TEST(GeneratorTest, PayloadsBounded) {
  // Payloads < 2^32 so the benchmark query's sums cannot overflow.
  DatasetSpec spec;
  spec.r_tuples = 5000;
  const auto dataset = workload::Generate(Topo(), 4, spec);
  for (const auto& t : dataset.r.ToVector()) {
    EXPECT_LT(t.payload, uint64_t{1} << 32);
  }
}

TEST(GeneratorTest, KeyOrderedArrangementClustersKeys) {
  DatasetSpec spec;
  spec.r_tuples = 10000;
  spec.multiplicity = 1.0;
  spec.s_arrangement = Arrangement::kKeyOrdered;
  const auto dataset = workload::Generate(Topo(), 4, spec);
  // Chunk key ranges must be (nearly) disjoint and ascending: max of
  // chunk c <= min of chunk c+1.
  for (uint32_t c = 0; c + 1 < dataset.s.num_chunks(); ++c) {
    uint64_t max_c = 0, min_next = ~uint64_t{0};
    const Chunk& cur = dataset.s.chunk(c);
    const Chunk& next = dataset.s.chunk(c + 1);
    for (size_t i = 0; i < cur.size; ++i) {
      max_c = std::max(max_c, cur.data[i].key);
    }
    for (size_t i = 0; i < next.size; ++i) {
      min_next = std::min(min_next, next.data[i].key);
    }
    EXPECT_LE(max_c, min_next);
  }
  // But within a chunk the tuples are NOT sorted ("no total order").
  const Chunk& chunk0 = dataset.s.chunk(0);
  bool sorted = true;
  for (size_t i = 1; i < chunk0.size; ++i) {
    if (chunk0.data[i - 1].key > chunk0.data[i].key) sorted = false;
  }
  EXPECT_FALSE(sorted);
}

TEST(GeneratorTest, AlgorithmNames) {
  EXPECT_STREQ(workload::AlgorithmName(workload::Algorithm::kPMpsm),
               "p-mpsm");
  EXPECT_STREQ(workload::AlgorithmName(workload::Algorithm::kWisconsin),
               "wisconsin");
}

// ------------------------------------------------------ machine model

TEST(MachineModelTest, PhaseSecondsLinearInCounters) {
  const auto model = sim::MachineModel::HyPer1();
  PerfCounters c;
  c.CountRead(true, true, 1'000'000'000);  // 1 GB local sequential
  const double t1 = model.PhaseSeconds(c);
  EXPECT_NEAR(t1, 0.52, 1e-9);

  c.CountRead(true, true, 1'000'000'000);
  EXPECT_NEAR(model.PhaseSeconds(c), 2 * t1, 1e-9);
}

TEST(MachineModelTest, RemoteCostsMoreThanLocal) {
  const auto model = sim::MachineModel::HyPer1();
  PerfCounters local, remote;
  local.CountRead(true, true, 1 << 30);
  remote.CountRead(false, true, 1 << 30);
  EXPECT_GT(model.PhaseSeconds(remote), model.PhaseSeconds(local));
  // Figure 1 exp 3 ratio: ~1.2x for sequential.
  EXPECT_NEAR(model.PhaseSeconds(remote) / model.PhaseSeconds(local), 1.2,
              0.05);

  PerfCounters local_rand, remote_rand;
  local_rand.CountRead(true, false, 1 << 30);
  remote_rand.CountRead(false, false, 1 << 30);
  // Random remote ~3x random local (Figure 1 exp 1 territory).
  EXPECT_NEAR(model.PhaseSeconds(remote_rand) /
                  model.PhaseSeconds(local_rand),
              3.0, 0.3);
}

TEST(MachineModelTest, ModelExecutionTakesPhaseMaxima) {
  const auto model = sim::MachineModel::HyPer1();
  std::vector<WorkerStats> workers(2);
  workers[0].phase_counters[kPhaseSortPublic].CountRead(true, true, 1 << 30);
  workers[1].phase_counters[kPhaseJoin].CountRead(true, true, 2 << 30);
  const auto modeled = sim::ModelExecution(model, workers);
  // Phase totals: max over workers per phase, summed.
  EXPECT_NEAR(modeled.total_seconds,
              modeled.phase_seconds[kPhaseSortPublic] +
                  modeled.phase_seconds[kPhaseJoin],
              1e-12);
  EXPECT_GT(modeled.phase_seconds[kPhaseJoin],
            modeled.phase_seconds[kPhaseSortPublic]);
  EXPECT_EQ(modeled.worker_seconds.size(), 2u);
}

TEST(MachineModelTest, OversubscriptionSlowdown) {
  const auto model = sim::MachineModel::HyPer1();  // 32 cores
  std::vector<WorkerStats> team32(32), team64(64);
  for (auto& w : team32) {
    w.phase_counters[kPhaseJoin].CountRead(true, true, 1 << 28);
  }
  for (auto& w : team64) {
    w.phase_counters[kPhaseJoin].CountRead(true, true, 1 << 27);
  }
  // 64 hyper-threads each do half the work but run at half speed:
  // total time stays flat (the Figure 13 plateau).
  const double t32 = sim::ModelExecution(model, team32).total_seconds;
  const double t64 = sim::ModelExecution(model, team64).total_seconds;
  EXPECT_NEAR(t64, t32, t32 * 0.01);
}

TEST(MachineModelTest, SortCalibrationMatchesFigure1) {
  // Figure 1: sorting a 50M-tuple chunk locally took 12946 ms.
  const auto model = sim::MachineModel::HyPer1();
  PerfCounters c;
  c.CountSort(50ull << 20);
  const double seconds = model.PhaseSeconds(c);
  EXPECT_NEAR(seconds, 12.946, 1.5);
  // NUMA-agnostic (globally allocated array): 41734 ms, factor ~3.2.
  EXPECT_NEAR(seconds * model.global_sort_penalty, 41.7, 5.0);
}

TEST(MachineModelTest, RemoteStealsAreCharged) {
  const auto model = sim::MachineModel::HyPer1();
  PerfCounters local_claims;
  local_claims.morsels_executed = 1000;  // locality-first hits: free
  EXPECT_DOUBLE_EQ(model.PhaseSeconds(local_claims), 0.0);

  PerfCounters steals;
  steals.morsels_executed = 1000;
  steals.morsels_stolen = 1000;
  EXPECT_NEAR(model.PhaseSeconds(steals), 1000 * model.ns_per_steal * 1e-9,
              1e-12);
}

// Stealing P-MPSM: same commandment profile as static except for the
// scheduler's claim atomics, which the counters make visible.
TEST(MachineModelTest, PMpsmStealingCountersAccountClaims) {
  const auto topology = numa::Topology::Simulated(4, 2);
  DatasetSpec spec;
  spec.r_tuples = 40000;
  spec.multiplicity = 2.0;
  const auto dataset = workload::Generate(topology, 8, spec);

  WorkerTeam team(topology, 8);
  MpsmOptions options;
  options.scheduler = SchedulerKind::kStealing;
  CountFactory counts(8);
  auto info = PMpsmJoin(options).Execute(team, dataset.r, dataset.s, counts);
  ASSERT_TRUE(info.ok());

  const auto total = info->aggregate.TotalCounters();
  EXPECT_GT(total.morsels_executed, 0u);
  // Every stolen morsel was also an executed morsel and a claim.
  EXPECT_LE(total.morsels_stolen, total.morsels_executed);
  EXPECT_LE(total.sync_acquisitions, total.morsels_executed);
  // Cross-check against the static run: identical output.
  MpsmOptions static_options;
  static_options.scheduler = SchedulerKind::kStatic;
  CountFactory static_counts(8);
  ASSERT_TRUE(PMpsmJoin(static_options)
                  .Execute(team, dataset.r, dataset.s, static_counts)
                  .ok());
  EXPECT_EQ(counts.Result(), static_counts.Result());
}

TEST(MachineModelTest, SyncCalibrationMatchesFigure1) {
  // Figure 1 exp 2: synchronized scatter of 50M tuples cost 22756 ms vs
  // 7440 ms without latches => ~306 ns per test-and-set.
  const auto model = sim::MachineModel::HyPer1();
  PerfCounters with_sync;
  with_sync.sync_acquisitions = 50ull << 20;
  EXPECT_NEAR(model.PhaseSeconds(with_sync), 22.756 - 7.440, 2.0);
}

// P-MPSM traffic shape on the model: phase 2 writes mostly remote
// (scatter), phase 4 reads mostly sequential, no sync anywhere. The
// commandments describe the paper's static scripts (stealing trades
// C3's zero-sync for balance, one atomic per claim), so pin kStatic.
TEST(MachineModelTest, PMpsmCountersObeyCommandments) {
  const auto topology = numa::Topology::Simulated(4, 2);
  DatasetSpec spec;
  spec.r_tuples = 40000;
  spec.multiplicity = 2.0;
  const auto dataset = workload::Generate(topology, 8, spec);

  MpsmOptions static_options;
  static_options.scheduler = SchedulerKind::kStatic;
  WorkerTeam team(topology, 8);
  CountFactory counts(8);
  auto info =
      PMpsmJoin(static_options).Execute(team, dataset.r, dataset.s, counts);
  ASSERT_TRUE(info.ok());

  const auto total = info->aggregate.TotalCounters();
  // C3: no fine-grained synchronization at all.
  EXPECT_EQ(total.sync_acquisitions, 0u);
  // C2: random remote *reads* only from interpolation-search probes,
  // which are a vanishing fraction of total bytes.
  EXPECT_LT(static_cast<double>(total.bytes_read_remote_rand),
            0.01 * static_cast<double>(total.TotalBytes()));
  // The scatter phase writes across nodes, and only R is scattered —
  // bounded by |R| tuples. (The rate class depends on the scatter
  // kind: random for scalar, sequential for write combining.)
  const auto& partition =
      info->aggregate.phase_counters[kPhasePartition];
  const uint64_t scatter_bytes = partition.bytes_written_remote_rand +
                                 partition.bytes_written_local_rand +
                                 partition.bytes_written_remote_seq +
                                 partition.bytes_written_local_seq;
  EXPECT_GT(scatter_bytes, 0u);
  EXPECT_LE(scatter_bytes, dataset.r.size() * sizeof(Tuple));
}

}  // namespace
}  // namespace mpsm

// P-MPSM internals: radix-bit resolution, diagnostics, options
// interactions, and counter-balance invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/consumers.h"
#include "core/p_mpsm.h"
#include "numa/topology.h"
#include "workload/generator.h"

namespace mpsm {
namespace {

numa::Topology Topo() { return numa::Topology::Simulated(4, 8); }

TEST(EffectiveRadixBitsTest, DefaultScalesWithTeam) {
  PMpsmJoin join;
  EXPECT_EQ(join.EffectiveRadixBits(1), 10u);   // max(log2(2)+5, 10)
  EXPECT_EQ(join.EffectiveRadixBits(4), 10u);
  EXPECT_EQ(join.EffectiveRadixBits(32), 10u);  // log2(32)+5 = 10
  EXPECT_EQ(join.EffectiveRadixBits(64), 11u);
  EXPECT_EQ(join.EffectiveRadixBits(1024), 15u);
}

TEST(EffectiveRadixBitsTest, ExplicitBitsRespectedButClampedToLogT) {
  MpsmOptions options;
  options.radix_bits = 7;
  EXPECT_EQ(PMpsmJoin(options).EffectiveRadixBits(16), 7u);
  // B must be at least log2(T) to express T partitions.
  EXPECT_EQ(PMpsmJoin(options).EffectiveRadixBits(512), 9u);
}

TEST(PMpsmDiagnosticsTest, PartitionSizesCoverR) {
  const auto topology = Topo();
  workload::DatasetSpec spec;
  spec.r_tuples = 20000;
  spec.multiplicity = 2.0;
  const auto dataset = workload::Generate(topology, 8, spec);

  WorkerTeam team(topology, 8);
  CountFactory counts(8);
  PMpsmDiagnostics diagnostics;
  auto info = PMpsmJoin().Execute(team, dataset.r, dataset.s, counts,
                                  &diagnostics);
  ASSERT_TRUE(info.ok());

  EXPECT_EQ(diagnostics.partition_sizes.size(), 8u);
  EXPECT_EQ(std::accumulate(diagnostics.partition_sizes.begin(),
                            diagnostics.partition_sizes.end(), uint64_t{0}),
            dataset.r.size());
  EXPECT_EQ(diagnostics.cdf.total(), dataset.s.size());
  EXPECT_EQ(diagnostics.splitters.num_partitions, 8u);
  // The normalizer spans the actual R key range.
  EXPECT_LE(diagnostics.normalizer.min_key(),
            diagnostics.normalizer.max_key());
}

TEST(PMpsmDiagnosticsTest, UniformDataGivesBalancedPartitions) {
  const auto topology = Topo();
  workload::DatasetSpec spec;
  spec.r_tuples = 80000;
  spec.multiplicity = 1.0;
  const auto dataset = workload::Generate(topology, 8, spec);

  WorkerTeam team(topology, 8);
  CountFactory counts(8);
  PMpsmDiagnostics diagnostics;
  ASSERT_TRUE(PMpsmJoin()
                  .Execute(team, dataset.r, dataset.s, counts, &diagnostics)
                  .ok());
  const uint64_t expected = dataset.r.size() / 8;
  for (uint64_t size : diagnostics.partition_sizes) {
    EXPECT_NEAR(static_cast<double>(size), static_cast<double>(expected),
                0.25 * expected);
  }
}

TEST(PMpsmDiagnosticsTest, SkewedDataStillCostBalanced) {
  const auto topology = Topo();
  workload::DatasetSpec spec;
  spec.r_tuples = 100000;
  spec.multiplicity = 1.0;
  spec.r_distribution = workload::KeyDistribution::kSkewLowEnd;
  spec.s_mode = workload::SKeyMode::kForeignKey;  // S skewed like R
  const auto dataset = workload::Generate(topology, 8, spec);

  WorkerTeam team(topology, 8);
  CountFactory counts(8);
  PMpsmDiagnostics diagnostics;
  ASSERT_TRUE(PMpsmJoin()
                  .Execute(team, dataset.r, dataset.s, counts, &diagnostics)
                  .ok());
  // Estimated per-partition costs balanced within 2x of the mean.
  const auto& costs = diagnostics.splitters.partition_costs;
  const double avg =
      std::accumulate(costs.begin(), costs.end(), 0.0) / costs.size();
  for (double cost : costs) {
    EXPECT_LT(cost, 2.0 * avg);
  }
}

TEST(PMpsmOptionsTest, AllSearchStrategiesAgree) {
  const auto topology = Topo();
  workload::DatasetSpec spec;
  spec.r_tuples = 15000;
  spec.multiplicity = 2.0;
  const auto dataset = workload::Generate(topology, 4, spec);
  WorkerTeam team(topology, 4);

  uint64_t reference = 0;
  bool first = true;
  for (auto search : {StartSearch::kInterpolation, StartSearch::kBinary,
                      StartSearch::kLinear}) {
    MpsmOptions options;
    options.start_search = search;
    CountFactory counts(4);
    ASSERT_TRUE(
        PMpsmJoin(options).Execute(team, dataset.r, dataset.s, counts).ok());
    if (first) {
      reference = counts.Result();
      first = false;
    } else {
      EXPECT_EQ(counts.Result(), reference);
    }
  }
  EXPECT_GT(reference, 0u);
}

TEST(PMpsmOptionsTest, RadixBitSweepAgrees) {
  const auto topology = Topo();
  workload::DatasetSpec spec;
  spec.r_tuples = 15000;
  spec.multiplicity = 1.0;
  spec.r_distribution = workload::KeyDistribution::kSkewHighEnd;
  const auto dataset = workload::Generate(topology, 4, spec);
  WorkerTeam team(topology, 4);

  CountFactory base(4);
  ASSERT_TRUE(PMpsmJoin().Execute(team, dataset.r, dataset.s, base).ok());
  for (uint32_t bits : {2u, 5u, 8u, 12u, 16u}) {
    MpsmOptions options;
    options.radix_bits = bits;
    CountFactory counts(4);
    ASSERT_TRUE(
        PMpsmJoin(options).Execute(team, dataset.r, dataset.s, counts).ok());
    EXPECT_EQ(counts.Result(), base.Result()) << "bits=" << bits;
  }
}

TEST(PMpsmOptionsTest, EquiHeightFactorSweepAgrees) {
  const auto topology = Topo();
  workload::DatasetSpec spec;
  spec.r_tuples = 10000;
  spec.multiplicity = 2.0;
  const auto dataset = workload::Generate(topology, 4, spec);
  WorkerTeam team(topology, 4);

  CountFactory base(4);
  ASSERT_TRUE(PMpsmJoin().Execute(team, dataset.r, dataset.s, base).ok());
  for (uint32_t f : {1u, 2u, 16u}) {
    MpsmOptions options;
    options.equi_height_factor = f;
    CountFactory counts(4);
    ASSERT_TRUE(
        PMpsmJoin(options).Execute(team, dataset.r, dataset.s, counts).ok());
    EXPECT_EQ(counts.Result(), base.Result()) << "f=" << f;
  }
}

TEST(PMpsmOptionsTest, NoPhaseBarriersStillCorrect) {
  const auto topology = Topo();
  workload::DatasetSpec spec;
  spec.r_tuples = 12000;
  spec.multiplicity = 2.0;
  const auto dataset = workload::Generate(topology, 6, spec);
  WorkerTeam team(topology, 6);

  MpsmOptions options;
  options.phase_barriers = false;
  CountFactory counts(6);
  ASSERT_TRUE(
      PMpsmJoin(options).Execute(team, dataset.r, dataset.s, counts).ok());
  CountFactory reference(6);
  ASSERT_TRUE(PMpsmJoin().Execute(team, dataset.r, dataset.s, reference)
                  .ok());
  EXPECT_EQ(counts.Result(), reference.Result());
}

TEST(PMpsmCountersTest, ScatterWritesExactlyR) {
  const auto topology = Topo();
  workload::DatasetSpec spec;
  spec.r_tuples = 30000;
  spec.multiplicity = 1.0;
  const auto dataset = workload::Generate(topology, 8, spec);
  WorkerTeam team(topology, 8);

  // The scalar scatter is charged at the random-write rate, write
  // combining at the sequential rate (docs/tuning.md); either way the
  // phase writes exactly |R| tuples.
  {
    MpsmOptions options;
    options.scatter = ScatterKind::kScalar;
    CountFactory counts(8);
    auto info = PMpsmJoin(options).Execute(team, dataset.r, dataset.s,
                                           counts);
    ASSERT_TRUE(info.ok());
    const auto& partition = info->aggregate.phase_counters[kPhasePartition];
    EXPECT_EQ(partition.bytes_written_local_rand +
                  partition.bytes_written_remote_rand,
              dataset.r.size() * sizeof(Tuple));
  }
  {
    MpsmOptions options;
    options.scatter = ScatterKind::kWriteCombining;
    CountFactory counts(8);
    auto info = PMpsmJoin(options).Execute(team, dataset.r, dataset.s,
                                           counts);
    ASSERT_TRUE(info.ok());
    const auto& partition = info->aggregate.phase_counters[kPhasePartition];
    EXPECT_EQ(partition.bytes_written_local_seq +
                  partition.bytes_written_remote_seq,
              dataset.r.size() * sizeof(Tuple));
  }
}

TEST(PMpsmCountersTest, SortWorkCoversBothInputs) {
  const auto topology = Topo();
  workload::DatasetSpec spec;
  spec.r_tuples = 20000;
  spec.multiplicity = 3.0;
  const auto dataset = workload::Generate(topology, 4, spec);
  WorkerTeam team(topology, 4);

  CountFactory counts(4);
  auto info = PMpsmJoin().Execute(team, dataset.r, dataset.s, counts);
  ASSERT_TRUE(info.ok());
  const auto total = info->aggregate.TotalCounters();
  EXPECT_EQ(total.sort_tuples, dataset.r.size() + dataset.s.size());
}

// ------------------------------------- scheduler A/B (location skew)

// Fig-16-style negatively correlated skew with the equi-height
// strawman splitters: partition sizes are deliberately unbalanced, so
// the static script leaves one straggler with most of phases 3/4.
workload::Dataset SkewedDataset(const numa::Topology& topology,
                                uint32_t team_size) {
  workload::DatasetSpec spec;
  spec.r_tuples = 60000;
  spec.multiplicity = 2.0;
  spec.key_domain = 150000;
  spec.r_distribution = workload::KeyDistribution::kSkewHighEnd;
  spec.s_distribution = workload::KeyDistribution::kSkewLowEnd;
  spec.s_mode = workload::SKeyMode::kIndependent;
  spec.seed = 4242;
  return workload::Generate(topology, team_size, spec);
}

MpsmOptions SkewOptions(SchedulerKind scheduler) {
  MpsmOptions options;
  options.scheduler = scheduler;
  options.cost_balanced_splitters = false;  // force partition imbalance
  options.morsel_tuples = 2048;
  return options;
}

TEST(SchedulerABTest, StealingMatchesStaticUnderLocationSkew) {
  const auto topology = Topo();
  const uint32_t team_size = 8;
  const auto dataset = SkewedDataset(topology, team_size);
  WorkerTeam team(topology, team_size);

  CountFactory static_counts(team_size);
  ASSERT_TRUE(PMpsmJoin(SkewOptions(SchedulerKind::kStatic))
                  .Execute(team, dataset.r, dataset.s, static_counts)
                  .ok());
  CountFactory stealing_counts(team_size);
  ASSERT_TRUE(PMpsmJoin(SkewOptions(SchedulerKind::kStealing))
                  .Execute(team, dataset.r, dataset.s, stealing_counts)
                  .ok());
  EXPECT_GT(static_counts.Result(), 0u);
  EXPECT_EQ(stealing_counts.Result(), static_counts.Result());
}

TEST(SchedulerABTest, StealingMatchesStaticForAllJoinKinds) {
  const auto topology = Topo();
  const uint32_t team_size = 4;
  const auto dataset = SkewedDataset(topology, team_size);
  WorkerTeam team(topology, team_size);

  for (JoinKind kind : {JoinKind::kInner, JoinKind::kLeftSemi,
                        JoinKind::kLeftAnti, JoinKind::kLeftOuter}) {
    MpsmOptions static_options = SkewOptions(SchedulerKind::kStatic);
    static_options.kind = kind;
    MpsmOptions stealing_options = SkewOptions(SchedulerKind::kStealing);
    stealing_options.kind = kind;

    CountFactory static_counts(team_size);
    ASSERT_TRUE(PMpsmJoin(static_options)
                    .Execute(team, dataset.r, dataset.s, static_counts)
                    .ok());
    CountFactory stealing_counts(team_size);
    ASSERT_TRUE(PMpsmJoin(stealing_options)
                    .Execute(team, dataset.r, dataset.s, stealing_counts)
                    .ok());
    EXPECT_EQ(stealing_counts.Result(), static_counts.Result())
        << JoinKindName(kind);
  }
}

// No worker idles while morsels remain: by construction a Claim only
// fails once every queue is drained, so the morsel totals must match
// the slicing exactly — every phase-4 morsel executed exactly once,
// across all workers, stolen or not.
TEST(SchedulerABTest, AllMergeMorselsExecutedExactlyOnce) {
  const auto topology = Topo();
  const uint32_t team_size = 8;
  const auto dataset = SkewedDataset(topology, team_size);
  WorkerTeam team(topology, team_size);

  const MpsmOptions options = SkewOptions(SchedulerKind::kStealing);
  CountFactory counts(team_size);
  PMpsmDiagnostics diagnostics;
  auto info = PMpsmJoin(options).Execute(team, dataset.r, dataset.s, counts,
                                         &diagnostics);
  ASSERT_TRUE(info.ok());

  // Expected phase-4 morsels: per non-empty partition i,
  // ceil(size_i / morsel_tuples) ranges x team_size public runs.
  uint64_t expected = 0;
  for (uint64_t size : diagnostics.partition_sizes) {
    if (size == 0) continue;
    const uint64_t ranges =
        (size + options.morsel_tuples - 1) / options.morsel_tuples;
    expected += ranges * team_size;
  }
  const auto& join_counters =
      info->aggregate.phase_counters[kPhaseJoin];
  EXPECT_EQ(join_counters.morsels_executed, expected);
  // The slicing is genuinely fine-grained: far more morsels than the
  // static script's one-per-worker, so stragglers have work to give up.
  EXPECT_GT(expected, uint64_t{team_size} * team_size);
}

TEST(JoinRunInfoTest, PhaseBreakdownRendering) {
  const auto topology = Topo();
  workload::DatasetSpec spec;
  spec.r_tuples = 5000;
  spec.multiplicity = 1.0;
  const auto dataset = workload::Generate(topology, 2, spec);
  WorkerTeam team(topology, 2);
  CountFactory counts(2);
  auto info = PMpsmJoin().Execute(team, dataset.r, dataset.s, counts);
  ASSERT_TRUE(info.ok());

  EXPECT_EQ(info->workers.size(), 2u);
  EXPECT_GT(info->wall_seconds, 0.0);
  EXPECT_GT(info->critical_path_seconds, 0.0);
  const auto phases = info->MaxPhaseSeconds();
  double sum = 0;
  for (double p : phases) sum += p;
  EXPECT_GT(sum, 0.0);
  const std::string breakdown = info->PhaseBreakdownString();
  EXPECT_NE(breakdown.find("phase 1"), std::string::npos);
  EXPECT_NE(breakdown.find("critical path"), std::string::npos);
}

}  // namespace
}  // namespace mpsm

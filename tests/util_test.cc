// Tests for util: Status/Result, bit helpers, RNG, env, table printer.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "util/bits.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/table.h"
#include "util/timer.h"

namespace mpsm {
namespace {

// ----------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad B");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad B");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad B");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfMemory), "OutOfMemory");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotSupported), "NotSupported");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::IoError("x"), Status::IoError("x"));
  EXPECT_FALSE(Status::IoError("x") == Status::IoError("y"));
  EXPECT_FALSE(Status::IoError("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Internal("boom"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

// ------------------------------------------------------------- bits

TEST(BitsTest, PowerOfTwo) {
  EXPECT_TRUE(bits::IsPowerOfTwo(1));
  EXPECT_TRUE(bits::IsPowerOfTwo(1024));
  EXPECT_FALSE(bits::IsPowerOfTwo(0));
  EXPECT_FALSE(bits::IsPowerOfTwo(3));
  EXPECT_TRUE(bits::IsPowerOfTwoOrZero(0));
}

TEST(BitsTest, NextPowerOfTwo) {
  EXPECT_EQ(bits::NextPowerOfTwo(0), 1u);
  EXPECT_EQ(bits::NextPowerOfTwo(1), 1u);
  EXPECT_EQ(bits::NextPowerOfTwo(2), 2u);
  EXPECT_EQ(bits::NextPowerOfTwo(3), 4u);
  EXPECT_EQ(bits::NextPowerOfTwo(1025), 2048u);
  EXPECT_EQ(bits::NextPowerOfTwo(uint64_t{1} << 40), uint64_t{1} << 40);
}

TEST(BitsTest, Log2) {
  EXPECT_EQ(bits::Log2Floor(1), 0u);
  EXPECT_EQ(bits::Log2Floor(2), 1u);
  EXPECT_EQ(bits::Log2Floor(3), 1u);
  EXPECT_EQ(bits::Log2Floor(uint64_t{1} << 63), 63u);
  EXPECT_EQ(bits::Log2Ceil(1), 0u);
  EXPECT_EQ(bits::Log2Ceil(2), 1u);
  EXPECT_EQ(bits::Log2Ceil(3), 2u);
  EXPECT_EQ(bits::Log2Ceil(1024), 10u);
  EXPECT_EQ(bits::Log2Ceil(1025), 11u);
}

TEST(BitsTest, BitWidth) {
  EXPECT_EQ(bits::BitWidth(0), 0u);
  EXPECT_EQ(bits::BitWidth(1), 1u);
  EXPECT_EQ(bits::BitWidth(255), 8u);
  EXPECT_EQ(bits::BitWidth(256), 9u);
}

TEST(BitsTest, CeilDivAndAlign) {
  EXPECT_EQ(bits::CeilDiv(10, 3), 4u);
  EXPECT_EQ(bits::CeilDiv(9, 3), 3u);
  EXPECT_EQ(bits::AlignUp(13, 8), 16u);
  EXPECT_EQ(bits::AlignUp(16, 8), 16u);
  EXPECT_EQ(bits::AlignUp(0, 64), 0u);
}

// -------------------------------------------------------------- rng

TEST(RngTest, Deterministic) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BoundedStaysInBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(37), 37u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Xoshiro256 rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, RoughlyUniform) {
  Xoshiro256 rng(5);
  int buckets[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++buckets[rng.NextBounded(10)];
  for (int b = 0; b < 10; ++b) {
    EXPECT_NEAR(buckets[b], n / 10, n / 100);
  }
}

// -------------------------------------------------------------- env

TEST(EnvTest, MissingVariable) {
  unsetenv("MPSM_TEST_VAR");
  EXPECT_FALSE(GetEnv("MPSM_TEST_VAR").has_value());
  EXPECT_EQ(GetEnvInt("MPSM_TEST_VAR", 5), 5);
  EXPECT_EQ(GetEnvDouble("MPSM_TEST_VAR", 0.5), 0.5);
  EXPECT_TRUE(GetEnvBool("MPSM_TEST_VAR", true));
}

TEST(EnvTest, ParsesInt) {
  setenv("MPSM_TEST_VAR", "42", 1);
  EXPECT_EQ(GetEnvInt("MPSM_TEST_VAR", 5), 42);
  setenv("MPSM_TEST_VAR", "-3", 1);
  EXPECT_EQ(GetEnvInt("MPSM_TEST_VAR", 5), -3);
  setenv("MPSM_TEST_VAR", "junk", 1);
  EXPECT_EQ(GetEnvInt("MPSM_TEST_VAR", 5), 5);
  unsetenv("MPSM_TEST_VAR");
}

TEST(EnvTest, ParsesBool) {
  setenv("MPSM_TEST_VAR", "true", 1);
  EXPECT_TRUE(GetEnvBool("MPSM_TEST_VAR", false));
  setenv("MPSM_TEST_VAR", "0", 1);
  EXPECT_FALSE(GetEnvBool("MPSM_TEST_VAR", true));
  setenv("MPSM_TEST_VAR", "maybe", 1);
  EXPECT_TRUE(GetEnvBool("MPSM_TEST_VAR", true));
  unsetenv("MPSM_TEST_VAR");
}

TEST(EnvTest, ParsesDouble) {
  setenv("MPSM_TEST_VAR", "2.5", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("MPSM_TEST_VAR", 1.0), 2.5);
  unsetenv("MPSM_TEST_VAR");
}

// ------------------------------------------------------------ table

TEST(TableTest, AlignsColumns) {
  TablePrinter table;
  table.SetHeader({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "23"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name    value"), std::string::npos);
  EXPECT_NE(out.find("------  -----"), std::string::npos);
  EXPECT_NE(out.find("longer  23"), std::string::npos);
}

TEST(TableTest, FormatsValues) {
  TablePrinter table;
  table.SetHeader({"a", "b", "c"});
  table.AddRowValues(7, 2.5, "str");
  const std::string out = table.ToString();
  EXPECT_NE(out.find('7'), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
  EXPECT_NE(out.find("str"), std::string::npos);
}

// ------------------------------------------------------------ timer

TEST(TimerTest, MeasuresElapsed) {
  WallTimer timer;
  const double t0 = timer.ElapsedSeconds();
  EXPECT_GE(t0, 0.0);
  volatile uint64_t sink = 0;
  for (int i = 0; i < 2000000; ++i) sink = sink + i;
  EXPECT_GE(timer.ElapsedSeconds(), t0);
  EXPECT_NEAR(timer.ElapsedMillis(), timer.ElapsedSeconds() * 1e3,
              timer.ElapsedSeconds() * 10);
}

}  // namespace
}  // namespace mpsm

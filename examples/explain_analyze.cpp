// End-to-end query observability (docs/observability.md):
//
//   1. EXPLAIN ANALYZE — run a join with tracing on and print the plan
//      with predicted vs measured per-phase cost side by side. The
//      planner's cost model is a falsifiable claim; this is where it
//      meets the stopwatch.
//   2. A spilling D-MPSM query through the JoinService, traced: every
//      phase span, io batch and stall, pool pin/evict/write-back, and
//      admission wait lands in one Chrome trace_event JSON, loadable
//      in Perfetto / chrome://tracing.
//   3. The process metrics registry exported as Prometheus text —
//      admission, engine, pool, cache, and io families from the same
//      run.
//
// MPSM_TRACE_OUT=<path>    writes the spilled query's trace JSON.
// MPSM_METRICS_OUT=<path>  writes the Prometheus text exposition.
// (CI validates both with tools/check_trace.py.)
#include <cstdio>
#include <string>

#include "core/consumers.h"
#include "engine/engine.h"
#include "service/join_service.h"
#include "util/env.h"
#include "workload/generator.h"

namespace {

bool WriteFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return written == text.size();
}

}  // namespace

int main() {
  using namespace mpsm;

  // --- 1. EXPLAIN ANALYZE on an in-memory join. One engine session,
  // tracing on: the report carries the executed plan, the measured
  // per-phase wall times, and the query's TraceSink.
  engine::EngineOptions options;
  options.workers = 4;
  options.trace = true;
  engine::Engine engine(options);

  workload::DatasetSpec data;
  data.r_tuples = 1u << 17;
  data.multiplicity = 4.0;
  const auto dataset =
      workload::Generate(engine.topology(), options.workers, data);

  MaxPayloadSumFactory aggregate(options.workers);
  engine::JoinSpec join;
  join.r = &dataset.r;
  join.s = &dataset.s;
  join.consumers = &aggregate;

  auto report = engine.Execute(join);
  if (!report.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("=== EXPLAIN ANALYZE (in-memory) ===\n%s\n",
              report->ExplainAnalyzeString().c_str());

  // --- 2. A spilling D-MPSM query through the join service: a tight
  // memory budget forces the planner onto the spill path (sorted paged
  // runs on disk, bounded staging pool), and the service adds the
  // admission wait to the trace. Tracing is per lane-engine option.
  service::ServiceOptions service_options;
  service_options.lanes = 1;
  service_options.engine.workers = 4;
  service_options.engine.trace = true;
  service::JoinService service(engine.topology(), service_options);

  MaxPayloadSumFactory spill_aggregate(service_options.engine.workers);
  engine::JoinSpec spill = join;
  spill.consumers = &spill_aggregate;
  spill.memory_budget_bytes = 2ull << 20;  // << working set: must spill

  auto id = service.Submit(spill);
  if (!id.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 id.status().ToString().c_str());
    return 1;
  }
  auto spilled = service.Wait(*id);
  if (!spilled.ok()) {
    std::fprintf(stderr, "spilled join failed: %s\n",
                 spilled.status().ToString().c_str());
    return 1;
  }
  if (spilled->plan.algorithm != engine::Algorithm::kDMpsm) {
    std::fprintf(stderr, "expected the budget to force D-MPSM, got %s\n",
                 engine::AlgorithmName(spilled->plan.algorithm));
    return 1;
  }
  std::printf("=== EXPLAIN ANALYZE (spilled, via service) ===\n%s\n",
              spilled->ExplainAnalyzeString().c_str());

  // --- 3. Exports. The trace is Chrome trace_event JSON (open in
  // Perfetto); the metrics registry renders Prometheus text.
  if (spilled->trace == nullptr) {
    std::fprintf(stderr, "tracing was on but the report has no sink\n");
    return 1;
  }
  const obs::TraceSummary summary = spilled->trace->Summary();
  std::printf(
      "trace: %llu events on %llu threads (%llu dropped), query id %llu, "
      "admission wait %.2f ms\n",
      static_cast<unsigned long long>(summary.events),
      static_cast<unsigned long long>(summary.threads),
      static_cast<unsigned long long>(summary.dropped_events),
      static_cast<unsigned long long>(spilled->query_id),
      spilled->admission_wait_ns / 1e6);

  if (const auto path = GetEnv("MPSM_TRACE_OUT")) {
    if (!WriteFile(*path, spilled->trace->ToChromeJson())) {
      std::fprintf(stderr, "cannot write %s\n", path->c_str());
      return 1;
    }
    std::printf("trace written to %s\n", path->c_str());
  }
  const std::string prometheus =
      service.MetricsSnapshot().ToPrometheusText();
  if (const auto path = GetEnv("MPSM_METRICS_OUT")) {
    if (!WriteFile(*path, prometheus)) {
      std::fprintf(stderr, "cannot write %s\n", path->c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", path->c_str());
  } else {
    std::printf("=== metrics (Prometheus text) ===\n%s", prometheus.c_str());
  }

  // The full report — plan, measured phases, counters, trace summary —
  // serializes as one JSON object for log pipelines.
  std::printf("\nreport json bytes: %zu\n", spilled->ToJson().size());
  return 0;
}

// RAM-constrained joining through the engine: give the JoinSpec a
// memory budget and the planner spills via D-MPSM (§3.1) on its own —
// spool both inputs to disk as sorted paged runs, then join while
// keeping only the pages around the current key-domain position
// resident (Figure 4). The staging pool is sized from the budget and
// fed by the async batched page-I/O subsystem (docs/io.md).
//
// MPSM_IO_BACKEND={sync,threadpool,uring,auto} selects the I/O engine
// (CI runs this example under several); an explicitly requested uring
// on a host without kernel support falls back to auto with a note.
// MPSM_POOL_BUDGET_KB pins the spill path's buffer pool to a fixed
// byte budget (docs/storage.md) — the CI low-memory smoke sets it far
// below the relation size, forcing clock eviction and async write-back
// on every run, and this program then *requires* the pool to have
// evicted and written back (exit 1 otherwise).
//
// HyPer-style systems do this to keep precious RAM for the
// transactional working set while batch queries run alongside.
#include <cstdio>
#include <optional>

#include "core/consumers.h"
#include "engine/engine.h"
#include "io/io_backend.h"
#include "util/env.h"
#include "workload/generator.h"

int main() {
  using namespace mpsm;

  engine::EngineOptions engine_options;
  if (const auto name = GetEnv("MPSM_IO_BACKEND")) {
    const auto backend = io::ParseIoBackendKind(*name);
    if (!backend.has_value()) {
      std::fprintf(stderr, "unknown MPSM_IO_BACKEND '%s'\n", name->c_str());
      return 1;
    }
    if (*backend == io::IoBackendKind::kUring && !io::UringSupported()) {
      std::printf(
          "io_uring unavailable on this host; falling back to auto\n");
      engine_options.dmpsm.io_backend = io::IoBackendKind::kAuto;
    } else {
      engine_options.dmpsm.io_backend = *backend;
    }
  }
  std::printf("io backend: %s (uring %s)\n",
              io::IoBackendKindName(engine_options.dmpsm.io_backend),
              io::UringSupported() ? "supported" : "unsupported");

  // An explicit pool budget overrides the planner's derivation; far
  // smaller than the relation it makes eviction + write-back mandatory.
  const uint64_t pool_budget_kb =
      static_cast<uint64_t>(GetEnvInt("MPSM_POOL_BUDGET_KB", 0));
  engine_options.dmpsm.pool_budget_bytes = pool_budget_kb << 10;
  if (pool_budget_kb != 0) {
    std::printf("pool budget pinned: %llu KB\n",
                static_cast<unsigned long long>(pool_budget_kb));
  }

  engine::Engine engine(engine_options);
  const uint32_t workers = 4;

  workload::DatasetSpec spec;
  spec.r_tuples = 1u << 18;
  spec.multiplicity = 4.0;
  const auto dataset = workload::Generate(engine.topology(), workers, spec);
  const size_t input_bytes =
      (dataset.r.size() + dataset.s.size()) * sizeof(Tuple);

  // Shrinking RAM budgets for the same join. The first fits the whole
  // working set (inputs + runs), so the planner stays in memory; the
  // others force the spill path with ever smaller staging pools. Every
  // budget must produce the same aggregate.
  std::optional<unsigned long long> expected_agg;
  for (const uint64_t budget_mb : {64, 8, 2, 1}) {
    MaxPayloadSumFactory aggregate(workers);
    engine::JoinSpec join;
    join.r = &dataset.r;
    join.s = &dataset.s;
    join.consumers = &aggregate;
    join.memory_budget_bytes = budget_mb << 20;

    auto report = engine.Execute(join);
    if (!report.ok()) {
      std::fprintf(stderr, "join failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }

    const auto agg =
        static_cast<unsigned long long>(aggregate.Result().value_or(0));
    std::printf("budget=%3llu MB -> %-9s agg=%llu  wall=%7.1f ms\n",
                static_cast<unsigned long long>(budget_mb),
                engine::AlgorithmName(report->plan.algorithm), agg,
                report->info.wall_seconds * 1e3);
    if (!expected_agg.has_value()) {
      expected_agg = agg;
    } else if (agg != *expected_agg) {
      std::fprintf(stderr, "aggregate mismatch: %llu vs %llu\n", agg,
                   *expected_agg);
      return 1;
    }
    if (report->dmpsm.has_value()) {
      const auto& d = *report->dmpsm;
      const auto& options = report->plan.dmpsm;
      const size_t pool_bytes =
          d.peak_pool_pages * options.tuples_per_page * sizeof(Tuple);
      const size_t window_bytes = d.peak_window_tuples * sizeof(Tuple);
      std::printf(
          "               pool %zu pages; io %llu written / %llu read; "
          "peak resident %.2f MB pool + %.2f MB window (inputs %.1f MB)\n",
          options.pool_pages,
          static_cast<unsigned long long>(d.io.pages_written),
          static_cast<unsigned long long>(d.io.pages_read),
          pool_bytes / 1e6, window_bytes / 1e6, input_bytes / 1e6);
      std::printf(
          "               %s: %llu batches (%llu pages coalesced), "
          "mean depth %.1f, stall %.1f ms; staging on %u node%s\n",
          io::IoBackendKindName(d.io_backend_used),
          static_cast<unsigned long long>(d.io_sched.io_batches),
          static_cast<unsigned long long>(d.io_sched.coalesced_pages),
          d.io_sched.mean_queue_depth, d.io_sched.io_stall_ns / 1e6,
          d.staging_nodes, d.staging_nodes == 1 ? "" : "s");
      std::printf(
          "               pool: %zu frames, %llu hit / %llu miss, "
          "%llu evicted, %llu written back, spool stall %.1f ms\n",
          d.pool.frames, static_cast<unsigned long long>(d.pool.hits),
          static_cast<unsigned long long>(d.pool.misses),
          static_cast<unsigned long long>(d.pool.evictions),
          static_cast<unsigned long long>(d.pool.writebacks),
          d.spool_write_stall_ns / 1e6);
      if (pool_budget_kb != 0 &&
          (d.pool.evictions == 0 || d.pool.writebacks == 0)) {
        std::fprintf(stderr,
                     "pinned pool budget did not force eviction "
                     "(%llu) + write-back (%llu)\n",
                     static_cast<unsigned long long>(d.pool.evictions),
                     static_cast<unsigned long long>(d.pool.writebacks));
        return 1;
      }
    }
  }

  std::printf(
      "\nThe spill path's resident set is the staging pool plus a small\n"
      "per-worker window of its own run — the budget, not the input\n"
      "size, bounds RAM. One engine session served every budget.\n");
  return 0;
}

// RAM-constrained joining with D-MPSM (§3.1): spool both inputs to
// disk as sorted paged runs, then join while keeping only the pages
// around the current key-domain position resident (Figure 4).
//
// HyPer-style systems do this to keep precious RAM for the
// transactional working set while batch queries run alongside.
#include <cstdio>

#include "core/consumers.h"
#include "disk/d_mpsm.h"
#include "numa/topology.h"
#include "workload/generator.h"

int main() {
  using namespace mpsm;

  const auto topology = numa::Topology::Probe();
  const uint32_t workers = 4;
  WorkerTeam team(topology, workers);

  workload::DatasetSpec spec;
  spec.r_tuples = 1u << 18;
  spec.multiplicity = 4.0;
  const auto dataset = workload::Generate(topology, workers, spec);
  const size_t input_bytes =
      (dataset.r.size() + dataset.s.size()) * sizeof(Tuple);

  // Three RAM budgets for the shared S staging pool.
  for (const size_t pool_pages : {size_t{4}, size_t{32}, size_t{256}}) {
    disk::DMpsmOptions options;
    options.tuples_per_page = 4096;
    options.pool_pages = pool_pages;
    // options.io_delay_us = 200;  // uncomment to model a spinning disk

    MaxPayloadSumFactory aggregate(workers);
    disk::DMpsmReport report;
    auto info = disk::DMpsmJoin(options).Execute(team, dataset.r, dataset.s,
                                                 aggregate, &report);
    if (!info.ok()) {
      std::fprintf(stderr, "d-mpsm failed: %s\n",
                   info.status().ToString().c_str());
      return 1;
    }

    const size_t pool_bytes =
        report.peak_pool_pages * options.tuples_per_page * sizeof(Tuple);
    const size_t window_bytes = report.peak_window_tuples * sizeof(Tuple);
    std::printf(
        "pool=%4zu pages  agg=%llu  wall=%7.1f ms  io: %llu written / "
        "%llu read pages\n"
        "                 peak resident: pool %.1f MB + private window "
        "%.2f MB  (inputs: %.1f MB)\n",
        pool_pages,
        static_cast<unsigned long long>(aggregate.Result().value_or(0)),
        info->wall_seconds * 1e3,
        static_cast<unsigned long long>(report.io.pages_written),
        static_cast<unsigned long long>(report.io.pages_read),
        pool_bytes / 1e6, window_bytes / 1e6, input_bytes / 1e6);
  }

  std::printf(
      "\nThe join's resident set is the staging pool plus a small\n"
      "per-worker window of its own run — independent of input size.\n");
  return 0;
}

// Quickstart: join two relations with P-MPSM and aggregate the result.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/consumers.h"
#include "core/p_mpsm.h"
#include "numa/topology.h"
#include "parallel/worker_team.h"
#include "workload/generator.h"

int main() {
  using namespace mpsm;

  // 1. Describe the machine. Probe() reads the real NUMA layout; on a
  //    laptop this degenerates to one node, which is fine — MPSM only
  //    gets faster with more nodes.
  const numa::Topology topology = numa::Topology::Probe();
  const uint32_t workers = 8;
  std::printf("machine: %s, team of %u workers\n",
              topology.ToString().c_str(), workers);

  // 2. Create a workload: |R| = 1M tuples, |S| = 4x|R| foreign keys.
  workload::DatasetSpec spec;
  spec.r_tuples = 1u << 20;
  spec.multiplicity = 4.0;
  const auto dataset = workload::Generate(topology, workers, spec);

  // 3. Run the paper's benchmark query:
  //    SELECT max(R.payload + S.payload) WHERE R.joinkey = S.joinkey.
  //    The smaller relation plays the private role (R), the larger the
  //    public role (S) — see the role-reversal experiment.
  WorkerTeam team(topology, workers);
  MaxPayloadSumFactory aggregate(workers);
  PMpsmJoin join;
  auto info = join.Execute(team, dataset.r, dataset.s, aggregate);
  if (!info.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 info.status().ToString().c_str());
    return 1;
  }

  // 4. Inspect results and the phase breakdown.
  std::printf("max(R.payload + S.payload) = %llu\n",
              static_cast<unsigned long long>(
                  aggregate.Result().value_or(0)));
  std::printf("output tuples = %llu, wall = %.1f ms\n",
              static_cast<unsigned long long>(info->output_tuples),
              info->wall_seconds * 1e3);
  std::printf("%s", info->PhaseBreakdownString().c_str());
  return 0;
}

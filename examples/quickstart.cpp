// Quickstart: join two relations through the engine front door.
//
// The whole join is five lines — describe the join, hand it to the
// engine, read the answer:
//
//   engine::Engine engine;                       // probe machine once
//   engine::JoinSpec spec;
//   spec.r = &r; spec.s = &s; spec.consumers = &aggregate;
//   auto report = engine.Execute(spec);          // plan -> validate -> run
//   aggregate.Result();                          // the answer
//
// No algorithm choice, no option structs: the cost-model planner picks
// the MPSM variant (or a hash baseline) from the workload statistics,
// the NUMA topology, and the memory budget, and the report says what it
// chose and why (docs/engine.md has the decision table).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/example_quickstart
#include <cstdio>
#include <memory>
#include <vector>

#include "core/consumers.h"
#include "engine/engine.h"
#include "service/join_service.h"
#include "workload/generator.h"

int main() {
  using namespace mpsm;

  // 1. One engine per process (or per tenant): it probes the NUMA
  //    topology at construction and reuses its pinned worker team
  //    across every query of the session.
  engine::Engine engine;
  const uint32_t workers = 8;
  std::printf("machine: %s, team of %u workers\n",
              engine.topology().ToString().c_str(), workers);

  // 2. Create a workload: |R| = 1M tuples, |S| = 4x|R| foreign keys,
  //    chunked one chunk per worker (how data arrives at the operator).
  workload::DatasetSpec spec;
  spec.r_tuples = 1u << 20;
  spec.multiplicity = 4.0;
  auto dataset = workload::Generate(engine.topology(), workers, spec);

  // 3. Run the paper's benchmark query:
  //    SELECT max(R.payload + S.payload) WHERE R.joinkey = S.joinkey.
  //    The smaller relation plays the private role (R), the larger the
  //    public role (S) — see the role-reversal experiment.
  MaxPayloadSumFactory aggregate(workers);
  engine::JoinSpec join;
  join.r = &dataset.r;
  join.s = &dataset.s;
  join.consumers = &aggregate;
  auto report = engine.Execute(join);
  if (!report.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  // 4. The report folds the plan (what ran, and why), the phase
  //    breakdown, and the variant diagnostics into one struct — and
  //    EXPLAIN ANALYZE renders the executed plan with predicted vs
  //    measured per-phase cost side by side (docs/observability.md;
  //    examples/explain_analyze.cpp adds tracing + metrics export).
  std::printf("max(R.payload + S.payload) = %llu\n",
              static_cast<unsigned long long>(
                  aggregate.Result().value_or(0)));
  std::printf("output tuples = %llu, wall = %.1f ms, planning = %.2f ms\n",
              static_cast<unsigned long long>(report->info.output_tuples),
              report->info.wall_seconds * 1e3, report->plan_seconds * 1e3);
  std::printf("%s", report->ExplainAnalyzeString().c_str());
  std::printf("%s", report->info.PhaseBreakdownString().c_str());

  // 5. Sessions amortize: a second query reuses the probed topology
  //    and the spawned team (stats prove it).
  MaxPayloadSumFactory again(workers);
  join.consumers = &again;
  if (!engine.Execute(join).ok()) return 1;
  std::printf(
      "\nsession: %llu queries, %llu team spawn(s), %llu topology "
      "probe(s)\n",
      static_cast<unsigned long long>(engine.stats().queries_executed),
      static_cast<unsigned long long>(engine.stats().team_spawns),
      static_cast<unsigned long long>(engine.stats().topology_probes));

  // 6. Many clients? Submit concurrently through the join service
  //    (docs/service.md): a fleet of engine sessions with admission
  //    control, and compatible queries over the same public input
  //    share one sort.
  service::ServiceOptions service_options;
  service_options.lanes = 2;
  service_options.engine.workers = workers;
  service_options.run_cache_bytes = 1ull << 30;  // for step 7
  service::JoinService service(engine.topology(), service_options);

  const uint32_t clients = 4;
  std::vector<std::unique_ptr<MaxPayloadSumFactory>> results;
  std::vector<service::JoinService::QueryId> handles;
  for (uint32_t c = 0; c < clients; ++c) {
    results.push_back(std::make_unique<MaxPayloadSumFactory>(workers));
    engine::JoinSpec concurrent = join;
    concurrent.consumers = results.back().get();
    auto id = service.Submit(concurrent);  // returns immediately
    if (!id.ok()) return 1;
    handles.push_back(*id);
  }
  for (uint32_t c = 0; c < clients; ++c) {
    if (!service.Wait(handles[c]).ok()) return 1;  // blocks per query
  }
  const auto stats = service.stats();
  std::printf(
      "service: %llu concurrent queries -> agg=%llu each, %llu shared "
      "sort batch(es) covering %llu queries\n",
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(results[0]->Result().value_or(0)),
      static_cast<unsigned long long>(stats.batches),
      static_cast<unsigned long long>(stats.batched_queries));

  // 7. Data keeps arriving? Ingest appends sorted delta runs through
  //    the service's run cache (docs/cache.md); the re-query merges
  //    them on read against the cached sorted runs — no re-sort of S.
  std::vector<Tuple> fresh(10000);
  for (size_t i = 0; i < fresh.size(); ++i) {
    fresh[i] = Tuple{i % (4u << 20), uint64_t{1} << 20};
  }
  if (!service.Ingest(dataset.s, fresh).ok()) return 1;

  MaxPayloadSumFactory requery(workers);
  engine::JoinSpec after_ingest = join;
  after_ingest.consumers = &requery;
  auto requery_id = service.Submit(after_ingest);
  if (!requery_id.ok()) return 1;
  auto requery_report = service.Wait(*requery_id);
  if (!requery_report.ok()) return 1;
  const auto cached = service.stats();
  std::printf(
      "ingest-then-requery: +%zu tuples -> agg=%llu via %s (%llu delta "
      "tuples merged on read; cache: %llu hits, %llu installs)\n",
      fresh.size(),
      static_cast<unsigned long long>(requery.Result().value_or(0)),
      engine::RunSourceName(requery_report->run_source),
      static_cast<unsigned long long>(requery_report->cache_delta_tuples),
      static_cast<unsigned long long>(cached.cache_hits),
      static_cast<unsigned long long>(cached.cache_installs));
  return 0;
}

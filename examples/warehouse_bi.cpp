// Operational BI on a warehouse schema — the paper's §1/§5.1
// motivation: orders (dimension-ish) joined with 4x as many orderline
// facts, in "real time", on all cores — all through one engine session.
//
// Demonstrates: role reversal (why the big table must stay public),
// like-for-like algorithm comparison via the benchmark-query harness
// (now including the D-MPSM spill path), and forcing an algorithm when
// a downstream consumer depends on its physical output property.
#include <algorithm>
#include <cstdio>

#include "core/consumers.h"
#include "engine/engine.h"
#include "workload/generator.h"
#include "workload/query.h"

int main() {
  using namespace mpsm;

  const uint32_t workers = 8;
  engine::Engine engine;

  // orders: 1M rows; orderlines: 4M rows, foreign key into orders.
  // (The paper sizes this at Amazon scale — 4B orderlines — on 1 TB.)
  workload::DatasetSpec spec;
  spec.r_tuples = 1u << 20;
  spec.multiplicity = 4.0;
  spec.s_mode = workload::SKeyMode::kForeignKey;
  const auto dataset = workload::Generate(engine.topology(), workers, spec);
  const Relation& orders = dataset.r;
  const Relation& orderlines = dataset.s;

  std::printf("orders=%zu orderlines=%zu on %s\n\n", orders.size(),
              orderlines.size(), engine.topology().ToString().c_str());

  // --- Query 1: revenue-style aggregate over the join, both role
  // assignments. The smaller input should be private (range
  // partitioned); the larger public (sorted once, scanned 1/T-th).
  for (const bool orders_private : {true, false}) {
    const Relation& r = orders_private ? orders : orderlines;
    const Relation& s = orders_private ? orderlines : orders;
    auto result =
        workload::RunBenchmarkQuery(workload::Algorithm::kPMpsm, engine, r, s);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("private=%-10s  max agg=%llu  wall=%7.1f ms\n",
                orders_private ? "orders" : "orderlines",
                static_cast<unsigned long long>(result->max_sum.value_or(0)),
                result->info().wall_seconds * 1e3);
  }

  // --- Query 2: same join executed by every algorithm in the library
  // (the harness forces each one onto the planner); all must agree —
  // and on a NUMA box, P-MPSM wins.
  std::printf("\nalgorithm comparison:\n");
  for (const auto algorithm :
       {workload::Algorithm::kPMpsm, workload::Algorithm::kBMpsm,
        workload::Algorithm::kDMpsm, workload::Algorithm::kWisconsin,
        workload::Algorithm::kRadix}) {
    auto result = workload::RunBenchmarkQuery(algorithm, engine, orders,
                                              orderlines);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-12s agg=%llu  wall=%7.1f ms\n",
                workload::AlgorithmName(algorithm),
                static_cast<unsigned long long>(result->max_sum.value_or(0)),
                result->info().wall_seconds * 1e3);
  }

  // --- Query 3: what would the planner itself pick? EXPLAIN without
  // executing.
  {
    engine::JoinSpec join;
    join.r = &orders;
    join.s = &orderlines;
    auto plan = engine.Plan(join);
    if (plan.ok()) {
      std::printf("\nplanner's own choice for this workload:\n%s",
                  plan->ToString().c_str());
    }
  }

  // --- Query 4: materialize the join output and exploit its quasi-
  // sorted order (each worker's output is a short sequence of sorted
  // runs) for cheap early aggregation — the §6/§7 "interesting
  // physical property". That property belongs to MPSM, so this query
  // forces the algorithm instead of letting the planner choose.
  MaterializeFactory rows(workers);
  engine::JoinSpec join;
  join.r = &orders;
  join.s = &orderlines;
  join.consumers = &rows;
  join.algorithm = engine::Algorithm::kPMpsm;
  auto report = engine.Execute(join);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  size_t total_rows = 0;
  size_t total_descents = 0;
  for (uint32_t w = 0; w < workers; ++w) {
    const auto& out = rows.RowsOfWorker(w);
    total_rows += out.size();
    for (size_t i = 1; i < out.size(); ++i) {
      total_descents += out[i].key < out[i - 1].key;
    }
  }
  std::printf(
      "\nmaterialized %zu rows; %zu order descents across %u workers\n"
      "(each worker's output is ~%u sorted runs -> sort-based group-by\n"
      "downstream needs only a tiny run merge, not a full sort)\n",
      total_rows, total_descents, workers, workers);

  std::printf(
      "\nsession: %llu queries, %llu team spawn(s), %llu topology "
      "probe(s)\n",
      static_cast<unsigned long long>(engine.stats().queries_executed),
      static_cast<unsigned long long>(engine.stats().team_spawns),
      static_cast<unsigned long long>(engine.stats().topology_probes));
  return 0;
}

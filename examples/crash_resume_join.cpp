// Crash-and-resume harness: prove a SIGKILLed spilling join restarts
// from its durable manifest instead of from scratch (docs/recovery.md).
//
// For each kill point N the harness forks a child that executes a
// D-MPSM join with recovery enabled and kill_after_commits = N: the
// child SIGKILLs itself right after its N-th durable manifest commit —
// the worst crash there is, no destructors, no flushes, mid-query. The
// parent then forks a second child that calls Engine::Resume on the
// identical query and checks three things:
//
//   1. the resumed answer equals the single-threaded reference oracle,
//   2. durable spooled runs were re-attached (no re-sort of their data),
//   3. for late kill points, completed chunk walks were skipped.
//
// The relations are ~24x the staging-pool budget, so every run spills
// heavily; the sweep covers kill points across all commit types
// (public runs, private runs, chunk completions). Exit 0 only when
// every resume was exact and at least one skipped completed chunks.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/example_crash_resume_join [sync|threadpool|uring|auto]
//
// tools/crash_harness/run.sh sweeps this binary over the I/O backends.
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "baseline/reference_join.h"
#include "core/consumers.h"
#include "engine/engine.h"
#include "io/io_backend_kind.h"
#include "numa/topology.h"
#include "workload/generator.h"

using namespace mpsm;

namespace {

constexpr uint32_t kWorkers = 4;

struct Harness {
  numa::Topology topology = numa::Topology::Simulated(2, 8);
  workload::Dataset dataset;
  std::string dir;
  io::IoBackendKind backend = io::IoBackendKind::kThreadpool;

  engine::EngineOptions Options(uint64_t kill_after) const {
    engine::EngineOptions options;
    options.workers = kWorkers;
    options.force_algorithm = engine::Algorithm::kDMpsm;
    // 64-tuple pages, a 4-page staging ring: |R|+|S| is ~24x the pool,
    // so the join genuinely spills and the manifest genuinely matters.
    options.dmpsm.tuples_per_page = 64;
    options.dmpsm.pool_pages = 4;
    options.dmpsm.directory = dir;
    options.dmpsm.io_backend = backend;
    options.recovery.enabled = true;
    options.recovery.dir = dir;
    options.recovery.kill_after_commits = kill_after;
    return options;
  }
};

Harness MakeHarness(io::IoBackendKind backend) {
  Harness h;
  h.backend = backend;
  workload::DatasetSpec spec;
  spec.r_tuples = 2000;
  spec.multiplicity = 2.0;
  spec.key_domain = 6000;
  spec.seed = 2026;
  h.dataset = workload::Generate(h.topology, kWorkers, spec);
  return h;
}

/// Child body: run the join once with the given kill point. Returns the
/// child's exit code; a kill point inside the run never returns (the
/// journal SIGKILLs the process mid-Execute).
int RunOnce(const Harness& h, uint64_t kill_after) {
  engine::Engine engine(h.topology, h.Options(kill_after));
  CountFactory counts(kWorkers);
  engine::JoinSpec spec;
  spec.r = &h.dataset.r;
  spec.s = &h.dataset.s;
  spec.consumers = &counts;
  auto report = engine.Execute(spec);
  if (!report.ok()) {
    std::fprintf(stderr, "  child execute failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  return 42;  // ran to completion: the kill point was past the last commit
}

/// Child body: resume the identical query and verify it against the
/// reference oracle. Prints what was salvaged. Exit code 10 = exact
/// answer AND completed chunk walks were skipped, 0 = exact answer,
/// 1 = failure (the child's address space is gone at wait time, so the
/// exit code is the report).
int ResumeOnce(const Harness& h, uint64_t kill_after) {
  CountFactory reference(1);
  const uint64_t expected = baseline::ReferenceJoin(
      h.dataset.r.ToVector(), h.dataset.s.ToVector(), JoinKind::kInner,
      reference.ConsumerForWorker(0));

  engine::Engine engine(h.topology, h.Options(/*kill_after=*/0));
  CountFactory counts(kWorkers);
  engine::JoinSpec spec;
  spec.r = &h.dataset.r;
  spec.s = &h.dataset.s;
  spec.consumers = &counts;
  auto report = engine.Resume(spec);
  if (!report.ok()) {
    std::fprintf(stderr, "  resume failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  const auto& dmpsm = *report->dmpsm;
  std::printf(
      "  kill after %2llu commits -> resumed=%d runs_reattached=%u "
      "chunks_skipped=%u new_commits=%llu\n",
      static_cast<unsigned long long>(kill_after), dmpsm.resumed ? 1 : 0,
      dmpsm.runs_reattached, dmpsm.chunks_skipped,
      static_cast<unsigned long long>(dmpsm.journal_commits));
  if (counts.Result() != expected) {
    std::fprintf(stderr,
                 "  WRONG ANSWER: resumed count %llu != reference %llu\n",
                 static_cast<unsigned long long>(counts.Result()),
                 static_cast<unsigned long long>(expected));
    return 1;
  }
  return dmpsm.chunks_skipped > 0 ? 10 : 0;
}

/// Forks `body` and returns the child's wait status.
template <typename Body>
int Fork(Body body) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    const int code = body();
    std::fflush(stdout);  // _exit skips stdio flush; don't lose the log
    std::fflush(stderr);
    ::_exit(code);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  io::IoBackendKind backend = io::IoBackendKind::kThreadpool;
  if (argc > 1) {
    if (std::strcmp(argv[1], "sync") == 0) {
      backend = io::IoBackendKind::kSync;
    } else if (std::strcmp(argv[1], "threadpool") == 0) {
      backend = io::IoBackendKind::kThreadpool;
    } else if (std::strcmp(argv[1], "uring") == 0) {
      backend = io::IoBackendKind::kUring;
    } else if (std::strcmp(argv[1], "auto") == 0) {
      backend = io::IoBackendKind::kAuto;
    } else {
      std::fprintf(stderr, "usage: %s [sync|threadpool|uring|auto]\n",
                   argv[0]);
      return 2;
    }
  }
  if (backend == io::IoBackendKind::kUring && !io::UringSupported()) {
    std::printf("io_uring not supported on this host; skipping\n");
    return 0;
  }

  char dir_template[] = "/tmp/mpsm_crash_harness_XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) {
    std::perror("mkdtemp");
    return 2;
  }
  Harness h = MakeHarness(backend);
  h.dir = dir_template;
  std::printf("crash harness: backend=%s artifacts=%s team=%u\n",
              io::IoBackendKindName(backend), h.dir.c_str(), kWorkers);
  std::fflush(stdout);  // children inherit the buffer; don't duplicate it

  // A full run on this shape commits 3 records per worker (public run,
  // private run, chunk walk) = 12; the sweep kills inside each band.
  const uint64_t kill_points[] = {1, 3, 5, 7, 9, 11, 12};
  bool any_chunk_skipped = false;
  int failures = 0;
  for (const uint64_t kill_after : kill_points) {
    const int status = Fork([&] { return RunOnce(h, kill_after); });
    if (WIFEXITED(status) && WEXITSTATUS(status) == 42) {
      std::printf("  kill after %2llu commits -> ran to completion\n",
                  static_cast<unsigned long long>(kill_after));
      continue;  // artifacts were retired by the successful run
    }
    if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
      std::fprintf(stderr, "  unexpected child status %d\n", status);
      ++failures;
      continue;
    }
    const int resume_status =
        Fork([&] { return ResumeOnce(h, kill_after); });
    const int code = WIFEXITED(resume_status) ? WEXITSTATUS(resume_status) : 1;
    if (code == 10) {
      any_chunk_skipped = true;
    } else if (code != 0) {
      std::fprintf(stderr, "  resume for kill point %llu failed\n",
                   static_cast<unsigned long long>(kill_after));
      ++failures;
    }
  }

  if (failures == 0 && any_chunk_skipped) {
    std::printf("OK: every kill point resumed to the exact answer, "
                "completed chunks were skipped\n");
    return 0;
  }
  std::fprintf(stderr, "FAILED: %d kill points misbehaved%s\n", failures,
               any_chunk_skipped ? "" : " (and no chunk was ever skipped)");
  return 1;
}

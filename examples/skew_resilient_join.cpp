// Skew resilience (§4): joining inputs with negatively correlated
// 80:20 key skew — the worst case for static range partitioning — and
// watching the CDF + splitter machinery balance the load.
//
// Also demonstrates the future-work join variants (semi / anti /
// outer) that the library implements on top of the same kernel.
#include <algorithm>
#include <cstdio>

#include "core/consumers.h"
#include "core/p_mpsm.h"
#include "numa/topology.h"
#include "workload/generator.h"

int main() {
  using namespace mpsm;

  const auto topology = numa::Topology::Probe();
  const uint32_t workers = 8;
  WorkerTeam team(topology, workers);

  // R: 80% of keys at the high end. S: 80% at the low end. 4x size.
  workload::DatasetSpec spec;
  spec.r_tuples = 1u << 19;
  spec.multiplicity = 4.0;
  spec.key_domain = spec.r_tuples * 5 / 2;
  spec.r_distribution = workload::KeyDistribution::kSkewHighEnd;
  spec.s_distribution = workload::KeyDistribution::kSkewLowEnd;
  spec.s_mode = workload::SKeyMode::kIndependent;
  const auto dataset = workload::Generate(topology, workers, spec);

  auto run = [&](bool cost_balanced) {
    MpsmOptions options;
    options.cost_balanced_splitters = cost_balanced;
    options.radix_bits = 10;
    CountFactory counts(workers);
    PMpsmDiagnostics diagnostics;
    auto info = PMpsmJoin(options).Execute(team, dataset.r, dataset.s,
                                           counts, &diagnostics);
    if (!info.ok()) {
      std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
      std::exit(1);
    }
    std::printf("\n%s splitters: %llu matches\n",
                cost_balanced ? "equi-cost" : "equi-height",
                static_cast<unsigned long long>(counts.Result()));
    std::printf("  partition sizes (R tuples): ");
    for (uint64_t size : diagnostics.partition_sizes) {
      std::printf("%llu ", static_cast<unsigned long long>(size));
    }
    std::printf("\n  estimated per-partition cost: ");
    for (double cost : diagnostics.splitters.partition_costs) {
      std::printf("%.0f ", cost);
    }
    const double worst = *std::max_element(
        diagnostics.splitters.partition_costs.begin(),
        diagnostics.splitters.partition_costs.end());
    double sum = 0;
    for (double cost : diagnostics.splitters.partition_costs) sum += cost;
    std::printf("\n  bottleneck/avg cost = %.2fx\n",
                worst / (sum / workers));
  };

  std::printf("negatively correlated skew, %u workers", workers);
  run(/*cost_balanced=*/false);  // Figure 16b: balanced |Ri|, bad join
  run(/*cost_balanced=*/true);   // Figure 16c: balanced total cost

  // Join variants on the same skewed data (§7 future work,
  // implemented here): how many R tuples have / lack partners?
  std::printf("\njoin variants (R=%zu tuples):\n", dataset.r.size());
  for (const auto kind : {JoinKind::kInner, JoinKind::kLeftSemi,
                          JoinKind::kLeftAnti, JoinKind::kLeftOuter}) {
    MpsmOptions options;
    options.kind = kind;
    CountFactory counts(workers);
    auto info =
        PMpsmJoin(options).Execute(team, dataset.r, dataset.s, counts);
    if (!info.ok()) {
      std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-11s -> %llu output tuples\n", JoinKindName(kind),
                static_cast<unsigned long long>(counts.Result()));
  }
  return 0;
}

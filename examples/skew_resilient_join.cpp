// Skew resilience (§4) through the engine: joining inputs with
// negatively correlated 80:20 key skew — the worst case for static
// range partitioning — and watching the CDF + splitter machinery
// balance the load. The planner's sampled skew estimate shows up in
// the plan; the splitter A/B forces P-MPSM (the experiment is about
// its splitters) via EngineOptions overrides.
//
// Also demonstrates the future-work join variants (semi / anti /
// outer): planned automatically — non-inner joins are MPSM-family
// territory, the hash baselines drop out.
#include <algorithm>
#include <cstdio>

#include "core/consumers.h"
#include "engine/engine.h"
#include "workload/generator.h"

int main() {
  using namespace mpsm;

  engine::Engine engine;
  const uint32_t workers = 8;

  // R: 80% of keys at the high end. S: 80% at the low end. 4x size.
  workload::DatasetSpec spec;
  spec.r_tuples = 1u << 19;
  spec.multiplicity = 4.0;
  spec.key_domain = spec.r_tuples * 5 / 2;
  spec.r_distribution = workload::KeyDistribution::kSkewHighEnd;
  spec.s_distribution = workload::KeyDistribution::kSkewLowEnd;
  spec.s_mode = workload::SKeyMode::kIndependent;
  const auto dataset = workload::Generate(engine.topology(), workers, spec);

  auto run = [&](bool cost_balanced) {
    engine::EngineOptions options = engine.options();
    options.force_algorithm = engine::Algorithm::kPMpsm;
    options.mpsm.cost_balanced_splitters = cost_balanced;
    options.mpsm.radix_bits = 10;

    CountFactory counts(workers);
    engine::JoinSpec join;
    join.r = &dataset.r;
    join.s = &dataset.s;
    join.consumers = &counts;
    join.options = &options;
    auto report = engine.Execute(join);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      std::exit(1);
    }
    std::printf("\n%s splitters: %llu matches (planner skew estimate "
                "~%.1fx)\n",
                cost_balanced ? "equi-cost" : "equi-height",
                static_cast<unsigned long long>(counts.Result()),
                report->plan.inputs.skew);
    const auto& diagnostics = *report->pmpsm;
    std::printf("  partition sizes (R tuples): ");
    for (uint64_t size : diagnostics.partition_sizes) {
      std::printf("%llu ", static_cast<unsigned long long>(size));
    }
    std::printf("\n  estimated per-partition cost: ");
    for (double cost : diagnostics.splitters.partition_costs) {
      std::printf("%.0f ", cost);
    }
    const double worst = *std::max_element(
        diagnostics.splitters.partition_costs.begin(),
        diagnostics.splitters.partition_costs.end());
    double sum = 0;
    for (double cost : diagnostics.splitters.partition_costs) sum += cost;
    std::printf("\n  bottleneck/avg cost = %.2fx\n",
                worst / (sum / workers));
  };

  std::printf("negatively correlated skew, %u workers", workers);
  run(/*cost_balanced=*/false);  // Figure 16b: balanced |Ri|, bad join
  run(/*cost_balanced=*/true);   // Figure 16c: balanced total cost

  // Join variants on the same skewed data (§7 future work, implemented
  // here): how many R tuples have / lack partners? No forcing — the
  // planner restricts non-inner joins to the MPSM family on its own.
  std::printf("\njoin variants (R=%zu tuples):\n", dataset.r.size());
  for (const auto kind : {JoinKind::kInner, JoinKind::kLeftSemi,
                          JoinKind::kLeftAnti, JoinKind::kLeftOuter}) {
    CountFactory counts(workers);
    engine::JoinSpec join;
    join.r = &dataset.r;
    join.s = &dataset.s;
    join.kind = kind;
    join.consumers = &counts;
    auto report = engine.Execute(join);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-11s -> %llu output tuples (via %s)\n",
                JoinKindName(kind),
                static_cast<unsigned long long>(counts.Result()),
                engine::AlgorithmName(report->plan.algorithm));
  }
  std::printf("\nsession: %llu queries on %llu team spawn(s)\n",
              static_cast<unsigned long long>(
                  engine.stats().queries_executed),
              static_cast<unsigned long long>(engine.stats().team_spawns));
  return 0;
}
